"""Hand-written emulation of copy-restore over plain call-by-copy RMI.

This module is the paper's Section 5.3.2 made concrete: everything a
programmer must write to get copy-restore behaviour out of call-by-copy
middleware, for each benchmark scenario. The point the paper makes — and
this code demonstrates — is that the emulation requires *server and client
changes*, full knowledge of the application's aliasing, and grows with
scenario difficulty:

* **Scenario I** (no aliases): wrap the parameter into the return value;
  the caller rebinds its root reference.
* **Scenario II** (aliases, stable structure): additionally walk the
  original and returned trees simultaneously (they are isomorphic) and
  reassign every alias to the corresponding returned node.
* **Scenario III** (aliases + restructuring): the trees are no longer
  isomorphic, so the *server* must also build a "shadow tree" of the
  parameter before mutating; the caller walks its original against the
  shadow to find each alias's modified counterpart.

The ``LOC:`` markers delimit the extra code the emulation needs on top of
the NRMI version; ``count_manual_loc`` tallies them, reproducing the
paper's ≈45 / +16 / +35 line counts.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.mutators import mutator_for
from repro.bench.trees import TreeNode, TreeWorkload
from repro.core.markers import Remote, Serializable
from repro.util.identity import IdentityMap

# LOC: begin return-types (scenario I, II, III)


class MutateReturn(Serializable):
    """Combined return type: the method's own result plus the parameter.

    Emulating copy-restore forces the remote interface to return the
    parameter (and, for scenario III, the shadow tree) alongside whatever
    the method actually wanted to return — the interface pollution the
    paper calls out.
    """

    def __init__(
        self,
        result: int,
        tree: Optional[TreeNode],
        shadow: Optional["ShadowNode"] = None,
    ) -> None:
        self.result = result
        self.tree = tree
        self.shadow = shadow


class ShadowNode(Serializable):
    """A structural snapshot node pointing at an original tree node.

    The shadow tree is isomorphic to the parameter *as it was received*,
    while its ``ref`` pointers lead to the (subsequently mutated) nodes —
    the bridge that lets the caller locate each old node's new version
    after arbitrary restructuring.
    """

    def __init__(
        self,
        ref: Optional[TreeNode],
        left: Optional["ShadowNode"] = None,
        right: Optional["ShadowNode"] = None,
    ) -> None:
        self.ref = ref
        self.left = left
        self.right = right


def build_shadow(root: Optional[TreeNode]) -> Optional[ShadowNode]:
    """Snapshot the structure of *root* before mutation (server side)."""
    if root is None:
        return None
    shadow_root = ShadowNode(root)
    stack: List[Tuple[TreeNode, ShadowNode]] = [(root, shadow_root)]
    while stack:
        node, shadow = stack.pop()
        if node.left is not None:
            shadow.left = ShadowNode(node.left)
            stack.append((node.left, shadow.left))
        if node.right is not None:
            shadow.right = ShadowNode(node.right)
            stack.append((node.right, shadow.right))
    return shadow_root


# LOC: end return-types


class ManualTreeService(Remote):
    """The server half of the by-hand emulation.

    Note the asymmetry with :class:`repro.bench.mutators.TreeService`: the
    NRMI service just mutates; this one must package parameters (and for
    scenario III, build and return a shadow tree) because the middleware
    will not restore anything by itself.
    """

    def mutate_and_return(self, scenario: str, tree: TreeNode, seed: int) -> MutateReturn:
        # LOC: begin server-shadow (scenario III)
        shadow = build_shadow(tree) if scenario == "III" else None
        # LOC: end server-shadow
        result = mutator_for(scenario)(tree, seed)
        # LOC: begin server-return (scenario I, II, III)
        return MutateReturn(result=result, tree=tree, shadow=shadow)
        # LOC: end server-return


# --------------------------------------------------------------- client side


def _parallel_walk_isomorphic(
    original: Optional[TreeNode], returned: Optional[TreeNode]
) -> IdentityMap:
    # LOC: begin client-walk (scenario II)
    mapping: IdentityMap = IdentityMap()
    stack = [(original, returned)]
    while stack:
        old_node, new_node = stack.pop()
        if old_node is None or new_node is None:
            continue
        mapping[old_node] = new_node
        stack.append((old_node.left, new_node.left))
        stack.append((old_node.right, new_node.right))
    return mapping
    # LOC: end client-walk


def _parallel_walk_shadow(
    original: Optional[TreeNode], shadow: Optional[ShadowNode]
) -> IdentityMap:
    # LOC: begin client-shadow-walk (scenario III)
    mapping: IdentityMap = IdentityMap()
    stack = [(original, shadow)]
    while stack:
        old_node, shadow_node = stack.pop()
        if old_node is None or shadow_node is None:
            continue
        mapping[old_node] = shadow_node.ref
        stack.append((old_node.left, shadow_node.left))
        stack.append((old_node.right, shadow_node.right))
    return mapping
    # LOC: end client-shadow-walk


def manual_call(service: Any, workload: TreeWorkload, seed: int) -> int:
    """Invoke the remote mutation over call-by-copy and fix the caller up.

    Returns the method's own result. After the call, ``workload.root`` and
    every entry of ``workload.aliases`` observe the server's mutations —
    the invariant NRMI maintains automatically.
    """
    scenario = workload.scenario
    ret = service.mutate_and_return(scenario, workload.root, seed)
    # LOC: begin client-update (scenario I, II, III)
    if scenario == "II":
        mapping = _parallel_walk_isomorphic(workload.root, ret.tree)
        workload.aliases = [mapping[alias] for alias in workload.aliases]
    elif scenario == "III":
        mapping = _parallel_walk_shadow(workload.root, ret.shadow)
        workload.aliases = [mapping[alias] for alias in workload.aliases]
    workload.root = ret.tree
    # LOC: end client-update
    return ret.result


# ------------------------------------------------------------- LOC counting


def count_manual_loc() -> Dict[str, int]:
    """Count the emulation-only lines, grouped by marked section.

    Reproduces the paper's 5.3.2 accounting: ≈45 lines of return-type
    machinery for every scenario, ≈16 more for the updating traversal
    (II, III), and ≈35 more for the shadow tree (III).
    """
    import inspect

    source = inspect.getsource(inspect.getmodule(count_manual_loc))
    sections: Dict[str, int] = {}
    current: Optional[str] = None
    for line in source.splitlines():
        stripped = line.strip()
        begin = re.match(r"# LOC: begin ([\w-]+)", stripped)
        end = re.match(r"# LOC: end ([\w-]+)", stripped)
        if begin:
            current = begin.group(1)
            continue
        if end:
            current = None
            continue
        if current and stripped and not stripped.startswith("#"):
            sections[current] = sections.get(current, 0) + 1
    return sections


def loc_per_scenario() -> Dict[str, int]:
    """Extra lines the by-hand emulation needs, per scenario."""
    sections = count_manual_loc()
    base = (
        sections.get("return-types", 0)
        + sections.get("server-return", 0)
        + sections.get("client-update", 0)
    )
    walk = sections.get("client-walk", 0)
    shadow = (
        sections.get("server-shadow", 0)
        + sections.get("client-shadow-walk", 0)
    )
    return {"I": base, "II": base + walk, "III": base + walk + shadow}
