"""Random aliased binary trees: the paper's benchmark workload.

Each benchmark passes "a single randomly-generated binary tree parameter"
to a remote method (paper 5.3.2). Three scenarios, ordered by how hard the
copy-restore semantics is to emulate by hand:

* **Scenario I** — no client-side aliases into the tree;
* **Scenario II** — aliases exist, the remote call changes node *data*
  but leaves the structure intact;
* **Scenario III** — aliases exist and the remote call may restructure
  the tree arbitrarily (rotate, detach, allocate new nodes).

A workload bundles the tree, the alias list (standing in for the many ways
real applications index into shared structure: caches, GUI views, multiple
indexes), and the generation parameters so a seed regenerates it exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.markers import Restorable
from repro.util.rng import DeterministicRandom

SCENARIOS = ("I", "II", "III")

#: Fraction of nodes the client aliases in scenarios II and III.
ALIAS_FRACTION = 0.125


class TreeNode(Restorable):
    """A binary tree node carrying an int payload (passed by copy-restore)."""

    def __init__(
        self,
        data: int,
        left: Optional["TreeNode"] = None,
        right: Optional["TreeNode"] = None,
    ) -> None:
        self.data = data
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"TreeNode({self.data})"


@dataclass
class TreeWorkload:
    """One benchmark input: a tree plus the caller's aliases into it."""

    scenario: str
    size: int
    seed: int
    root: TreeNode = None
    aliases: List[TreeNode] = field(default_factory=list)

    def nodes_in_order(self) -> List[TreeNode]:
        """All nodes, deterministic preorder (explicit stack; any depth)."""
        out: List[TreeNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            out.append(node)
            stack.append(node.right)
            stack.append(node.left)
        return out

    def visible_data(self) -> tuple:
        """Everything the caller can observe: tree preorder + alias views.

        Structure and values reachable from the root (with placeholders for
        missing children) and the data/child-data seen through each alias.
        The oracle tests compare this against local execution.
        """
        shape: List[object] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node is None:
                shape.append(None)
                continue
            shape.append(node.data)
            stack.append(node.right)
            stack.append(node.left)
        alias_view = []
        for alias in self.aliases:
            alias_view.append(
                (
                    alias.data,
                    alias.left.data if alias.left is not None else None,
                    alias.right.data if alias.right is not None else None,
                )
            )
        return tuple(shape), tuple(alias_view)


def _build_random_tree(size: int, rng: DeterministicRandom) -> TreeNode:
    """Grow a random-shaped binary tree with *size* nodes."""
    root = TreeNode(rng.randint(0, 10_000))
    nodes = [root]
    while len(nodes) < size:
        parent = rng.choice(nodes)
        child = TreeNode(rng.randint(0, 10_000))
        if parent.left is None and (parent.right is not None or rng.chance(0.5)):
            parent.left = child
        elif parent.right is None:
            parent.right = child
        else:
            continue  # both slots taken; draw another parent
        nodes.append(child)
    return root


def generate_workload(scenario: str, size: int, seed: int) -> TreeWorkload:
    """Generate the benchmark input for (*scenario*, *size*, *seed*)."""
    if scenario not in SCENARIOS:
        raise ValueError(f"scenario must be one of {SCENARIOS}, got {scenario!r}")
    if size < 1:
        raise ValueError(f"size must be positive, got {size}")
    rng = DeterministicRandom(seed).fork(f"tree-{scenario}-{size}")
    workload = TreeWorkload(scenario=scenario, size=size, seed=seed)
    workload.root = _build_random_tree(size, rng)
    if scenario != "I":
        nodes = workload.nodes_in_order()
        alias_count = max(1, int(len(nodes) * ALIAS_FRACTION))
        # Never alias the root: the interesting aliases point at interior
        # nodes that restructuring can orphan (paper Figure 1).
        candidates = nodes[1:] or nodes
        workload.aliases = rng.sample(candidates, alias_count)
    return workload
