"""Regenerate the paper's tables: ``python -m repro.bench.report --table N``.

Prints each table in the paper's layout (rows: benchmark scenario; columns:
tree size; one section per serialization profile) with measured
milliseconds per call, and — with ``--compare`` — the paper's value beside
each cell. ``--all`` regenerates everything; ``--loc`` reports the
by-hand-emulation line counts of Section 5.3.2.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Any, Callable, Dict, List, Optional

from repro.bench import harness
from repro.bench.manual_restore import loc_per_scenario
from repro.bench.tables import (
    PAPER_MANUAL_LOC,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5_JDK13,
    PAPER_TABLE5_JDK14,
    PAPER_TABLE6,
    PROFILE_FOR_JDK,
    SCENARIOS,
    SIZES,
    TABLE_TITLES,
)

Cell = str
Row = List[Cell]

#: When set (by ``--json``), every measured BenchRecord is appended here
#: and written out at the end of the run.
_JSON_SINK: Optional[List[Dict[str, Any]]] = None


def _sink(record: harness.BenchRecord) -> harness.BenchRecord:
    if _JSON_SINK is not None:
        entry = dataclasses.asdict(record)
        entry["ms_total"] = record.ms_total
        _JSON_SINK.append(entry)
    return record


def _fmt(ms: Optional[float]) -> str:
    if ms is None:
        return "-"
    if ms < 1.0:
        return "<1"
    return f"{ms:.0f}"


def _print_grid(title: str, sections: Dict[str, Dict[str, Dict[int, Cell]]]) -> None:
    print(f"\n=== {title} ===")
    for section, rows in sections.items():
        print(f"-- {section} --")
        header = "Bench/Size " + "".join(f"{size:>16}" for size in SIZES)
        print(header)
        for scenario in SCENARIOS:
            cells = "".join(f"{rows[scenario].get(size, '-'):>16}" for size in SIZES)
            print(f"{scenario:<11}{cells}")


def _cell(record: harness.BenchRecord, paper: Optional[float], compare: bool) -> Cell:
    measured = record.cell()
    if not compare:
        return measured
    return f"{measured}({_fmt(paper)})"


def run_table1(reps: int, compare: bool, sizes=SIZES) -> None:
    sections: Dict[str, Dict[str, Dict[int, Cell]]] = {}
    rows: Dict[str, Dict[int, Cell]] = {s: {} for s in SCENARIOS}
    for scenario in SCENARIOS:
        for size in sizes:
            fast = _sink(harness.run_local(scenario, size, reps=reps, machine="fast"))
            slow = _sink(harness.run_local(scenario, size, reps=reps, machine="slow"))
            cell = f"{fast.cell()}/{slow.cell()}"
            if compare:
                paper_fast, paper_slow = PAPER_TABLE1["jdk14"][scenario][size]
                cell += f"({_fmt(paper_fast)}/{_fmt(paper_slow)})"
            rows[scenario][size] = cell
    sections["local fast/slow (paper: JDK 1.4 columns)"] = rows
    _print_grid(TABLE_TITLES["1"], sections)


def _run_profiled_table(
    table: str,
    runner: Callable[..., harness.BenchRecord],
    paper: Dict[str, Dict[str, Dict[int, Optional[float]]]],
    reps: int,
    compare: bool,
    sizes=SIZES,
    **kwargs,
) -> None:
    sections: Dict[str, Dict[str, Dict[int, Cell]]] = {}
    for jdk, profile in PROFILE_FOR_JDK.items():
        rows: Dict[str, Dict[int, Cell]] = {s: {} for s in SCENARIOS}
        for scenario in SCENARIOS:
            for size in sizes:
                record = _sink(
                    runner(scenario, size, profile=profile, reps=reps, **kwargs)
                )
                rows[scenario][size] = _cell(
                    record, paper[jdk][scenario][size], compare
                )
        sections[f"profile={profile} (paper: {jdk.upper()})"] = rows
    _print_grid(TABLE_TITLES[table], sections)


def run_table2(reps: int, compare: bool, sizes=SIZES) -> None:
    _run_profiled_table("2", harness.run_oneway, PAPER_TABLE2, reps, compare, sizes)


def run_table3(reps: int, compare: bool, sizes=SIZES) -> None:
    _run_profiled_table(
        "3", harness.run_manual_restore, PAPER_TABLE3, reps, compare, sizes,
        network=None,
    )


def run_table4(reps: int, compare: bool, sizes=SIZES) -> None:
    _run_profiled_table("4", harness.run_manual_restore, PAPER_TABLE4, reps, compare, sizes)


def run_table5(reps: int, compare: bool, sizes=SIZES) -> None:
    sections: Dict[str, Dict[str, Dict[int, Cell]]] = {}

    rows: Dict[str, Dict[int, Cell]] = {s: {} for s in SCENARIOS}
    for scenario in SCENARIOS:
        for size in sizes:
            record = _sink(harness.run_nrmi(
                scenario, size, profile="legacy", implementation="portable", reps=reps
            ))
            rows[scenario][size] = _cell(
                record, PAPER_TABLE5_JDK13[scenario][size], compare
            )
    sections["profile=legacy, portable (paper: JDK 1.3)"] = rows

    rows = {s: {} for s in SCENARIOS}
    for scenario in SCENARIOS:
        for size in sizes:
            portable = _sink(harness.run_nrmi(
                scenario, size, profile="modern", implementation="portable", reps=reps
            ))
            optimized = _sink(harness.run_nrmi(
                scenario, size, profile="modern", implementation="optimized", reps=reps
            ))
            cell = f"{portable.cell()}/{optimized.cell()}"
            if compare:
                paper_portable, paper_optimized = PAPER_TABLE5_JDK14[scenario][size]
                cell += f"({_fmt(paper_portable)}/{_fmt(paper_optimized)})"
            rows[scenario][size] = cell
    sections["profile=modern, portable/optimized (paper: JDK 1.4)"] = rows
    _print_grid(TABLE_TITLES["5"], sections)


def run_table6(reps: int, compare: bool, sizes=SIZES) -> None:
    _run_profiled_table(
        "6", harness.run_remote_ref, PAPER_TABLE6, min(reps, 3), compare, sizes
    )


def run_loc(compare: bool) -> None:
    measured = loc_per_scenario()
    print("\n=== Manual-emulation extra lines of code (Section 5.3.2) ===")
    print(f"scenario I   : {measured['I']} lines (paper: ~45, return types)")
    print(f"scenario II  : {measured['II']} lines (paper: ~45+16)")
    print(f"scenario III : {measured['III']} lines (paper: ~45+16+35)")
    if compare:
        print(f"paper section counts: {PAPER_MANUAL_LOC}")
    print("NRMI version : 0 extra lines (declare Restorable + registry lookup)")


_RUNNERS = {
    "1": run_table1,
    "2": run_table2,
    "3": run_table3,
    "4": run_table4,
    "5": run_table5,
    "6": run_table6,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="nrmi-bench", description="Regenerate the NRMI paper's tables."
    )
    parser.add_argument("--table", choices=sorted(_RUNNERS), action="append",
                        help="table number to regenerate (repeatable)")
    parser.add_argument("--all", action="store_true", help="regenerate every table")
    parser.add_argument("--loc", action="store_true",
                        help="report manual-emulation line counts (5.3.2)")
    parser.add_argument("--reps", type=int, default=5,
                        help="repetitions per cell (median reported)")
    parser.add_argument("--compare", action="store_true",
                        help="print the paper's value next to each cell")
    parser.add_argument("--sizes", type=str, default=None,
                        help="comma-separated tree sizes (default 16,64,256,1024)")
    parser.add_argument("--json", type=str, default=None, metavar="FILE",
                        help="also write every measured record as JSON")
    args = parser.parse_args(argv)

    sizes = SIZES
    if args.sizes:
        sizes = tuple(int(s) for s in args.sizes.split(","))

    tables = sorted(_RUNNERS) if args.all else (args.table or [])
    if not tables and not args.loc:
        parser.print_help()
        return 2
    global _JSON_SINK
    if args.json:
        _JSON_SINK = []
    try:
        for table in tables:
            _RUNNERS[table](reps=args.reps, compare=args.compare, sizes=sizes)
        if args.loc or args.all:
            run_loc(compare=args.compare)
    finally:
        if args.json and _JSON_SINK is not None:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(_JSON_SINK, handle, indent=2)
            print(f"\nwrote {len(_JSON_SINK)} records to {args.json}")
            _JSON_SINK = None
    return 0


if __name__ == "__main__":
    sys.exit(main())
