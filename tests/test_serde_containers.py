"""Serialization of containers: lists, tuples, sets, dicts, nesting."""

import pytest

from repro.serde.reader import ObjectReader
from repro.serde.writer import ObjectWriter


def roundtrip(value):
    writer = ObjectWriter()
    writer.write_root(value)
    reader = ObjectReader(writer.getvalue())
    result = reader.read_root()
    reader.expect_end()
    return result


class TestLists:
    def test_empty(self):
        result = roundtrip([])
        assert result == []
        assert isinstance(result, list)

    def test_flat(self):
        assert roundtrip([1, "two", 3.0, None, True]) == [1, "two", 3.0, None, True]

    def test_nested(self):
        value = [[1, [2, [3, [4]]]], [5]]
        assert roundtrip(value) == value

    def test_fresh_identity(self):
        value = [1, 2]
        assert roundtrip(value) is not value

    def test_large(self):
        value = list(range(10_000))
        assert roundtrip(value) == value

    def test_deep_nesting_beyond_recursion_limit(self):
        """Iterative codec: depth far beyond sys recursion limit."""
        value = current = []
        for _ in range(50_000):
            nested = []
            current.append(nested)
            current = nested
        result = roundtrip(value)
        depth = 0
        node = result
        while node:
            node = node[0]
            depth += 1
        assert depth == 50_000


class TestTuples:
    def test_empty(self):
        result = roundtrip(())
        assert result == ()
        assert isinstance(result, tuple)

    def test_flat_and_nested(self):
        value = (1, ("a", (2.0,)), None)
        assert roundtrip(value) == value

    def test_tuple_containing_mutable(self):
        value = ([1, 2], {"k": 3})
        assert roundtrip(value) == value

    def test_shared_tuple_identity_preserved(self):
        inner = (1, 2)
        result = roundtrip([inner, inner])
        assert result[0] is result[1]


class TestSets:
    def test_empty_set(self):
        result = roundtrip(set())
        assert result == set()
        assert isinstance(result, set)

    def test_set_values(self):
        value = {1, "a", 2.5, None, (3, 4)}
        assert roundtrip(value) == value

    def test_frozenset(self):
        value = frozenset({1, 2, 3})
        result = roundtrip(value)
        assert result == value
        assert isinstance(result, frozenset)

    def test_nested_frozensets(self):
        value = frozenset({frozenset({1}), frozenset({2})})
        assert roundtrip(value) == value


class TestDicts:
    def test_empty(self):
        assert roundtrip({}) == {}

    def test_primitive_keys(self):
        value = {1: "one", "two": 2, (3, 4): [5], None: True}
        assert roundtrip(value) == value

    def test_nested_dicts(self):
        value = {"a": {"b": {"c": [1, 2, {"d": 3}]}}}
        assert roundtrip(value) == value

    def test_insertion_order_preserved(self):
        value = {f"k{i}": i for i in range(100)}
        assert list(roundtrip(value)) == list(value)

    def test_dict_value_aliasing(self):
        shared = [1]
        result = roundtrip({"a": shared, "b": shared})
        assert result["a"] is result["b"]


class TestMixedNesting:
    def test_kitchen_sink(self):
        value = {
            "list": [1, (2, frozenset({3})), {"x": bytearray(b"y")}],
            "tuple": ({"deep": [None, True]},),
            17: {18, 19},
        }
        result = roundtrip(value)
        assert result["list"][0] == 1
        assert result["list"][1] == (2, frozenset({3}))
        assert result["list"][2]["x"] == bytearray(b"y")
        assert result["tuple"][0]["deep"] == [None, True]
        assert result[17] == {18, 19}

    def test_list_in_tuple_in_dict_in_list(self):
        value = [{"k": ([1, 2],)}]
        result = roundtrip(value)
        assert result == value
        assert isinstance(result[0]["k"], tuple)
        assert isinstance(result[0]["k"][0], list)
