"""Repository-level artifacts: docs present, commands they promise exist."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestDocumentsPresent:
    @pytest.mark.parametrize(
        "name",
        [
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "CHANGELOG.md",
            "docs/wire_format.md",
            "docs/calling_semantics.md",
            "docs/architecture.md",
            "docs/reproducing.md",
        ],
    )
    def test_exists_and_nonempty(self, name):
        path = ROOT / name
        assert path.exists(), f"{name} missing"
        assert len(path.read_text(encoding="utf-8")) > 500

    def test_design_confirms_paper_match(self):
        text = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
        assert "Paper-text check" in text
        assert "matches the target paper" in text

    def test_experiments_records_every_table(self):
        text = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for title_fragment in (
            "Local Execution",
            "without Restore",
            "no network",
            "two-way traffic",
            "Call-by-copy-restore",
            "Remote References",
        ):
            assert title_fragment in text, f"table {title_fragment!r} not recorded"
        assert "Methodology" in text

    def test_experiments_has_figures_and_ablations(self):
        text = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        assert "Figure" in text
        assert "Ablation" in text


class TestPromisedCommandsExist:
    def test_python_m_targets_resolve(self):
        import importlib

        for module_name in (
            "repro.bench.report",
            "repro.bench.figures",
            "repro.serde.dump",
            "repro.nrmi.server_main",
            "repro.nrmi.client_main",
        ):
            module = importlib.import_module(module_name)
            assert hasattr(module, "main")

    def test_readme_examples_exist(self):
        readme = (ROOT / "README.md").read_text(encoding="utf-8")
        for match in re.finditer(r"python (examples/\w+\.py)", readme):
            assert (ROOT / match.group(1)).exists(), match.group(1)

    def test_benchmark_files_per_table(self):
        names = {path.name for path in (ROOT / "benchmarks").glob("bench_*.py")}
        for table in range(1, 7):
            assert any(f"table{table}" in name for name in names), (
                f"no benchmark file for table {table}"
            )
        assert "bench_ablations.py" in names
        assert "bench_structures.py" in names

    def test_examples_count(self):
        examples = list((ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3  # the deliverable floor; we ship more
