"""Unit tests for the failure-policy layer: retry, breakers, reply cache,
TCP server lifecycle, and the extended fault-injection modes."""

import threading
import time

import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    RetryableError,
    TransportError,
    is_retryable,
)
from repro.transport.fault import FaultInjectingChannel, corrupt_payload
from repro.transport.inproc import InProcChannel
from repro.transport.reliability import (
    BreakerRegistry,
    CircuitBreaker,
    CircuitBreakerPolicy,
    ReplyCache,
    RetryPolicy,
    call_with_retry,
)
from repro.transport.tcp import TcpChannel, TcpServer
from repro.util.clock import ManualClock
from repro.util.rng import DeterministicRandom


def echo(request: bytes) -> bytes:
    return bytes(request)


class TestErrorClassification:
    def test_retryable_is_transport_error(self):
        assert issubclass(RetryableError, TransportError)
        assert issubclass(DeadlineExceededError, TransportError)
        assert issubclass(CircuitOpenError, TransportError)

    def test_is_retryable_split(self):
        assert is_retryable(RetryableError("flaky"))
        assert not is_retryable(TransportError("closed"))
        assert not is_retryable(DeadlineExceededError("too slow"))
        assert not is_retryable(CircuitOpenError("tcp://x", 1.0))
        assert not is_retryable(ValueError("app bug"))


class TestRetryPolicy:
    def test_defaults_are_inert(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert policy.deadline is None
        assert not policy.enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=256)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=0)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            max_attempts=10,
            base_delay=0.1,
            multiplier=2.0,
            max_delay=0.5,
            jitter=0.0,
        )
        rng = DeterministicRandom(0)
        delays = [policy.backoff_delay(i, rng) for i in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_bounds_and_determinism(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, jitter=0.5)
        delays_a = [
            policy.backoff_delay(1, DeterministicRandom(seed))
            for seed in range(50)
        ]
        delays_b = [
            policy.backoff_delay(1, DeterministicRandom(seed))
            for seed in range(50)
        ]
        assert delays_a == delays_b  # same seeds, same jitter
        for delay in delays_a:
            assert 0.05 <= delay <= 0.15
        assert len(set(delays_a)) > 1  # jitter actually varies


class TestCircuitBreaker:
    def _breaker(self, threshold=3, reset=10.0):
        clock = ManualClock()
        transitions = []
        breaker = CircuitBreaker(
            "tcp://x",
            CircuitBreakerPolicy(failure_threshold=threshold, reset_timeout=reset),
            clock=clock,
            on_transition=lambda old, new: transitions.append((old, new)),
        )
        return breaker, clock, transitions

    def test_trips_after_threshold(self):
        breaker, _clock, transitions = self._breaker(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert transitions == [("closed", "open")]

    def test_open_fails_fast_with_retry_after(self):
        breaker, clock, _ = self._breaker(threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(4.0)
        with pytest.raises(CircuitOpenError) as exc_info:
            breaker.before_call()
        assert exc_info.value.address == "tcp://x"
        assert exc_info.value.retry_after == pytest.approx(6.0)

    def test_half_open_probe_success_closes(self):
        breaker, clock, transitions = self._breaker(threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        breaker.before_call()  # allowed: half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert transitions == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_half_open_probe_failure_reopens(self):
        breaker, clock, _ = self._breaker(threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        breaker.before_call()
        breaker.record_failure()  # probe failed
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.before_call()
        # The reset timer restarted at the probe failure.
        clock.advance(5.0)
        breaker.before_call()
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_success_resets_failure_streak(self):
        breaker, _clock, _ = self._breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_registry_lazily_creates_per_address(self):
        seen = []
        registry = BreakerRegistry(
            CircuitBreakerPolicy(failure_threshold=1),
            clock=ManualClock(),
            on_transition=lambda addr, old, new: seen.append((addr, old, new)),
        )
        a = registry.breaker_for("tcp://a")
        assert registry.breaker_for("tcp://a") is a
        b = registry.breaker_for("tcp://b")
        assert b is not a
        a.record_failure()
        assert seen == [("tcp://a", "closed", "open")]
        assert registry.states() == {"tcp://a": "open", "tcp://b": "closed"}

    def test_registry_disabled_returns_none(self):
        registry = BreakerRegistry(None)
        assert registry.breaker_for("tcp://a") is None
        assert registry.states() == {}


class TestReplyCache:
    def test_miss_then_hit(self):
        cache = ReplyCache(max_entries=4)
        assert cache.get(1) is None
        cache.put(1, b"reply")
        assert cache.get(1) == b"reply"
        assert cache.hits == 1
        assert cache.stores == 1

    def test_lru_eviction_is_bounded_and_ordered(self):
        cache = ReplyCache(max_entries=3)
        for call_id in (1, 2, 3):
            cache.put(call_id, b"r%d" % call_id)
        cache.get(1)  # refresh 1: now 2 is the least recently used
        cache.put(4, b"r4")
        assert len(cache) == 3
        assert cache.get(2) is None  # evicted
        assert cache.get(1) == b"r1"
        assert cache.get(4) == b"r4"
        assert cache.evictions == 1

    def test_eviction_keeps_size_under_heavy_churn(self):
        cache = ReplyCache(max_entries=8)
        for call_id in range(1000):
            cache.put(call_id, b"x")
        assert len(cache) == 8
        assert cache.evictions == 992
        # Only the newest 8 survive.
        assert all(cache.get(call_id) is None for call_id in range(992))
        assert all(cache.get(call_id) == b"x" for call_id in range(992, 1000))

    def test_zero_size_disables(self):
        cache = ReplyCache(max_entries=0)
        cache.put(1, b"r")
        assert len(cache) == 0
        assert cache.get(1) is None

    def test_clear(self):
        cache = ReplyCache(max_entries=4)
        cache.put(1, b"r")
        cache.clear()
        assert cache.get(1) is None


class TestCallWithRetry:
    def _run(self, outcomes, policy, clock=None, breaker=None, advance=0.0):
        """Drive call_with_retry over scripted send outcomes.

        *outcomes* entries are bytes (success) or exceptions (raised);
        *advance* moves the manual clock inside every send call.
        """
        clock = clock or ManualClock()
        sleeps = []
        attempts = []

        def send(attempt, remaining):
            attempts.append((attempt, remaining))
            if advance:
                clock.advance(advance)
            outcome = outcomes.pop(0)
            if isinstance(outcome, BaseException):
                raise outcome
            return outcome

        def sleep(seconds):
            sleeps.append(seconds)
            clock.advance(seconds)

        result = call_with_retry(
            send,
            policy,
            rng=DeterministicRandom(0),
            breaker=breaker,
            clock=clock,
            sleep=sleep,
        )
        return result, attempts, sleeps

    def test_first_attempt_success_no_sleep(self):
        result, attempts, sleeps = self._run(
            [b"ok"], RetryPolicy(max_attempts=3)
        )
        assert result == b"ok"
        assert attempts == [(0, None)]
        assert sleeps == []

    def test_retries_transient_failures_then_succeeds(self):
        result, attempts, sleeps = self._run(
            [RetryableError("a"), RetryableError("b"), b"ok"],
            RetryPolicy(max_attempts=5, base_delay=0.1, jitter=0.0),
        )
        assert result == b"ok"
        assert [a for a, _ in attempts] == [0, 1, 2]
        assert sleeps == [0.1, 0.2]  # exponential backoff between attempts

    def test_exhausted_attempts_raises_last_error(self):
        with pytest.raises(RetryableError, match="final"):
            self._run(
                [RetryableError("first"), RetryableError("final")],
                RetryPolicy(max_attempts=2, base_delay=0.0),
            )

    def test_fatal_error_never_retried(self):
        outcomes = [TransportError("deliberately closed"), b"never sent"]
        with pytest.raises(TransportError, match="deliberately closed"):
            self._run(outcomes, RetryPolicy(max_attempts=5))
        assert outcomes == [b"never sent"]  # one send only

    def test_deadline_threads_remaining_budget_into_send(self):
        _result, attempts, _sleeps = self._run(
            [RetryableError("x"), b"ok"],
            RetryPolicy(max_attempts=3, base_delay=0.5, jitter=0.0, deadline=10.0),
            advance=1.0,
        )
        assert attempts[0][1] == pytest.approx(10.0)
        # 1s spent in the first send + 0.5s backoff = 8.5s remaining.
        assert attempts[1][1] == pytest.approx(8.5)

    def test_deadline_exhaustion_is_terminal(self):
        with pytest.raises(DeadlineExceededError):
            self._run(
                [RetryableError("x"), RetryableError("y"), b"never"],
                RetryPolicy(max_attempts=10, base_delay=1.0, jitter=0.0, deadline=1.5),
                advance=1.0,
            )

    def test_deadline_error_from_send_is_terminal(self):
        outcomes = [DeadlineExceededError("socket timer fired"), b"never"]
        with pytest.raises(DeadlineExceededError):
            self._run(outcomes, RetryPolicy(max_attempts=5, deadline=5.0))
        assert outcomes == [b"never"]

    def test_breaker_opens_and_fails_fast(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            "tcp://x",
            CircuitBreakerPolicy(failure_threshold=2, reset_timeout=30.0),
            clock=clock,
        )
        policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        with pytest.raises(RetryableError):
            self._run(
                [RetryableError("a"), RetryableError("b")],
                policy,
                clock=clock,
                breaker=breaker,
            )
        assert breaker.state == CircuitBreaker.OPEN
        # Next call is rejected before send runs.
        outcomes = [b"never sent"]
        with pytest.raises(CircuitOpenError):
            self._run(outcomes, policy, clock=clock, breaker=breaker)
        assert outcomes == [b"never sent"]

    def test_breaker_success_closes_again(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            "tcp://x",
            CircuitBreakerPolicy(failure_threshold=1, reset_timeout=5.0),
            clock=clock,
        )
        with pytest.raises(RetryableError):
            self._run(
                [RetryableError("a")],
                RetryPolicy(max_attempts=1),
                clock=clock,
                breaker=breaker,
            )
        clock.advance(5.0)
        result, _attempts, _sleeps = self._run(
            [b"ok"], RetryPolicy(max_attempts=1), clock=clock, breaker=breaker
        )
        assert result == b"ok"
        assert breaker.state == CircuitBreaker.CLOSED


class TestTcpServerLifecycle:
    def _wait_until(self, predicate, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.01)
        return predicate()

    def test_connection_handles_are_reaped(self):
        with TcpServer(echo) as server:
            for _ in range(5):
                channel = TcpChannel(server.host, server.port)
                assert channel.request(b"ping") == b"ping"
                channel.close()
            assert self._wait_until(lambda: server.live_connections == 0), (
                f"{server.live_connections} connection handles never reaped"
            )

    def test_stop_drains_in_flight_request(self):
        release = threading.Event()

        def slow_echo(request: bytes) -> bytes:
            release.wait(timeout=5.0)
            return bytes(request)

        server = TcpServer(slow_echo)
        channel = TcpChannel(server.host, server.port)
        result = {}

        def call():
            try:
                result["response"] = channel.request(b"drain-me")
            except TransportError as exc:  # pragma: no cover - failure detail
                result["error"] = exc

        caller = threading.Thread(target=call)
        caller.start()
        # Let the request reach the handler, then stop while it is in flight.
        assert self._wait_until(lambda: server.live_connections == 1)
        time.sleep(0.05)
        release.set()
        server.stop(grace=5.0)
        caller.join(timeout=5.0)
        channel.close()
        assert result.get("response") == b"drain-me", result.get("error")
        assert server.live_connections == 0

    def test_stop_force_closes_stuck_connection(self):
        with TcpServer(echo) as server:
            channel = TcpChannel(server.host, server.port)
            assert channel.request(b"x") == b"x"
            # The connection idles in read_frame; a tiny grace must not hang.
            started = time.monotonic()
            server.stop(grace=0.2)
            assert time.monotonic() - started < 3.0
            channel.close()
        assert self._wait_until(lambda: server.live_connections == 0)

    def test_channel_does_not_blindly_resend(self):
        """A broken pooled connection surfaces as RetryableError; the
        channel must NOT transparently resend (that is the retry layer's
        job, with a call ID attached)."""
        executions = []

        def counting(request: bytes) -> bytes:
            executions.append(bytes(request))
            return bytes(request)

        server = TcpServer(counting)
        channel = TcpChannel(server.host, server.port)
        try:
            assert channel.request(b"one") == b"one"
            # Break the pooled connection out from under the channel.
            channel._sock.close()
            with pytest.raises(RetryableError):
                channel.request(b"two")
            # The request was never silently re-executed.
            assert executions == [b"one"]
            # The channel recovers on the next explicit request.
            assert channel.request(b"three") == b"three"
            assert executions == [b"one", b"three"]
        finally:
            channel.close()
            server.stop()


class TestFaultModes:
    def test_deterministic_schedule(self):
        channel = FaultInjectingChannel(
            InProcChannel(echo), mode="drop_request", fail_on_calls={2, 4}
        )
        outcomes = []
        for _ in range(5):
            try:
                channel.request(b"x")
                outcomes.append("ok")
            except TransportError:
                outcomes.append("fail")
        assert outcomes == ["ok", "fail", "ok", "fail", "ok"]

    def test_delay_sleeps_when_no_deadline(self):
        sleeps = []
        channel = FaultInjectingChannel(
            InProcChannel(echo),
            failure_rate=1.0,
            mode="delay",
            delay_seconds=0.25,
            sleep=sleeps.append,
        )
        assert channel.request(b"x") == b"x"
        assert sleeps == [0.25]

    def test_delay_exceeding_deadline_fails_without_sleeping(self):
        sleeps = []
        channel = FaultInjectingChannel(
            InProcChannel(echo),
            failure_rate=1.0,
            mode="delay",
            delay_seconds=10.0,
            sleep=sleeps.append,
        )
        with pytest.raises(DeadlineExceededError):
            channel.request(b"x", timeout=0.05)
        assert sleeps == []  # deadline tests must not burn wall-clock time

    def test_corrupt_response_flips_bytes(self):
        channel = FaultInjectingChannel(
            InProcChannel(echo), failure_rate=1.0, mode="corrupt_response"
        )
        response = channel.request(b"payload-bytes")
        assert response != b"payload-bytes"
        assert len(response) == len(b"payload-bytes")
        assert corrupt_payload(b"payload-bytes") == response

    def test_duplicate_response_delivers_request_twice(self):
        deliveries = []

        def counting(request: bytes) -> bytes:
            deliveries.append(bytes(request))
            return bytes(request)

        channel = FaultInjectingChannel(
            InProcChannel(counting), failure_rate=1.0, mode="duplicate_response"
        )
        assert channel.request(b"dup") == b"dup"
        assert deliveries == [b"dup", b"dup"]
