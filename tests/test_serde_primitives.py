"""Serialization of primitive values."""

import math

import pytest

from repro.serde.reader import ObjectReader
from repro.serde.writer import ObjectWriter
from repro.serde.profiles import LEGACY_PROFILE, MODERN_PROFILE


def roundtrip(value, profile=MODERN_PROFILE):
    writer = ObjectWriter(profile=profile)
    writer.write_root(value)
    reader = ObjectReader(writer.getvalue(), profile=profile)
    result = reader.read_root()
    reader.expect_end()
    return result


class TestScalars:
    def test_none(self):
        assert roundtrip(None) is None

    def test_true_false(self):
        assert roundtrip(True) is True
        assert roundtrip(False) is False

    @pytest.mark.parametrize("value", [0, 1, -1, 255, -256, 2**31, -(2**31), 2**62])
    def test_ints(self, value):
        result = roundtrip(value)
        assert result == value
        assert type(result) is int

    def test_big_ints(self):
        for value in (2**100, -(2**100), 10**50, 2**63, -(2**63) - 1):
            assert roundtrip(value) == value

    def test_bool_not_confused_with_int(self):
        assert roundtrip(1) is not True
        assert type(roundtrip(True)) is bool
        assert type(roundtrip(0)) is int

    @pytest.mark.parametrize("value", [0.0, -1.5, 1e300, 1e-300, math.pi])
    def test_floats(self, value):
        result = roundtrip(value)
        assert result == value
        assert type(result) is float

    def test_nan(self):
        result = roundtrip(float("nan"))
        assert math.isnan(result)

    def test_complex(self):
        value = complex(1.5, -2.5)
        assert roundtrip(value) == value

    def test_str(self):
        for value in ("", "hello", "ünïcode ☃", "a" * 10_000):
            assert roundtrip(value) == value

    def test_bytes(self):
        for value in (b"", b"\x00\xff", bytes(range(256))):
            assert roundtrip(value) == value

    def test_bytearray_roundtrips_as_bytearray(self):
        value = bytearray(b"mutable")
        result = roundtrip(value)
        assert result == value
        assert isinstance(result, bytearray)
        assert result is not value

    def test_int_subclass_degrades_to_int(self):
        class MyInt(int):
            pass

        result = roundtrip(MyInt(7))
        assert result == 7

    def test_multiple_roots_in_one_stream(self):
        writer = ObjectWriter()
        for value in (1, "two", 3.0, None, True):
            writer.write_root(value)
        assert writer.root_count == 5
        reader = ObjectReader(writer.getvalue())
        assert [reader.read_root() for _ in range(5)] == [1, "two", 3.0, None, True]
        reader.expect_end()


class TestStringMemoization:
    def test_repeated_equal_strings_share_one_encoding(self):
        writer_shared = ObjectWriter()
        writer_shared.write_root(["longish-string-value"] * 50)
        writer_distinct = ObjectWriter()
        writer_distinct.write_root(
            [f"longish-string-valu{c}" for c in "abcdefghij" * 5]
        )
        assert len(writer_shared.getvalue()) < len(writer_distinct.getvalue()) / 2

    def test_memoized_strings_decode_equal(self):
        value = ["repeat"] * 10
        assert roundtrip(value) == value

    def test_bytes_memoized_too(self):
        blob = b"x" * 1000
        writer = ObjectWriter()
        writer.write_root([blob, blob, blob])
        assert len(writer.getvalue()) < 1200


class TestLegacyProfile:
    @pytest.mark.parametrize(
        "value", [None, 3, "s", 2.5, b"b", [1, 2], {"k": "v"}, {1, 2}]
    )
    def test_legacy_roundtrip(self, value):
        assert roundtrip(value, profile=LEGACY_PROFILE) == value

    def test_cross_profile_streams_interop(self):
        """Tags self-describe: a legacy stream decodes under modern & back."""
        writer = ObjectWriter(profile=LEGACY_PROFILE)
        writer.write_root({"a": [1, (2, 3)]})
        reader = ObjectReader(writer.getvalue(), profile=MODERN_PROFILE)
        assert reader.read_root() == {"a": [1, (2, 3)]}

    def test_modern_stream_is_not_larger(self):
        payload = [{"field": i, "name": "x" * 5} for i in range(50)]
        legacy = ObjectWriter(profile=LEGACY_PROFILE)
        legacy.write_root(payload)
        modern = ObjectWriter(profile=MODERN_PROFILE)
        modern.write_root(payload)
        assert len(modern.getvalue()) <= len(legacy.getvalue())
