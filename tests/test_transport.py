"""Transport layer: framing, in-process channel, TCP, simnet, resolver."""

import os
import socket
import threading
import time

import pytest

from repro.errors import DeadlineExceededError, RetryableError, TransportError
from repro.transport.base import ChannelStats
from repro.transport.framing import (
    MAX_FRAME_BYTES,
    PIPELINE_PREAMBLE,
    read_frame,
    read_frame_corr,
    write_frame,
    write_frame_corr,
)
from repro.transport.inproc import InProcChannel
from repro.transport.resolver import ChannelResolver
from repro.transport.simnet import LOOPBACK_MODEL, NetworkModel, SimulatedChannel
from repro.transport.tcp import PipelinedTcpChannel, TcpChannel, TcpServer
from repro.transport.uds import PipelinedUdsChannel, UdsChannel, UdsServer


def echo_handler(request: bytes) -> bytes:
    return b"echo:" + request


class TestFraming:
    def test_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            write_frame(a, b"hello")
            assert read_frame(b) == b"hello"
        finally:
            a.close()
            b.close()

    def test_empty_frame(self):
        a, b = socket.socketpair()
        try:
            write_frame(a, b"")
            assert read_frame(b) == b""
        finally:
            a.close()
            b.close()

    def test_multiple_frames_in_order(self):
        a, b = socket.socketpair()
        try:
            for i in range(5):
                write_frame(a, f"frame-{i}".encode())
            for i in range(5):
                assert read_frame(b) == f"frame-{i}".encode()
        finally:
            a.close()
            b.close()

    def test_closed_peer_raises(self):
        a, b = socket.socketpair()
        a.close()
        with pytest.raises(TransportError):
            read_frame(b)
        b.close()

    def test_partial_frame_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00\x00\x10only-8-bytes")  # announce 16, send 12
            a.close()
            with pytest.raises(TransportError, match="mid-frame"):
                read_frame(b)
        finally:
            b.close()

    def test_oversized_announcement_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(TransportError, match="oversized"):
                read_frame(b)
        finally:
            a.close()
            b.close()


class TestInProc:
    def test_request_response(self):
        channel = InProcChannel(echo_handler)
        assert channel.request(b"ping") == b"echo:ping"

    def test_stats_recorded(self):
        channel = InProcChannel(echo_handler)
        channel.request(b"abcd")
        snap = channel.stats.snapshot()
        assert snap == {"requests": 1, "bytes_sent": 4, "bytes_received": 9}

    def test_closed_channel_raises(self):
        channel = InProcChannel(echo_handler)
        channel.close()
        with pytest.raises(TransportError):
            channel.request(b"x")


class TestTcp:
    def test_request_response_over_sockets(self):
        with TcpServer(echo_handler) as server:
            channel = TcpChannel(server.host, server.port)
            try:
                assert channel.request(b"over-tcp") == b"echo:over-tcp"
            finally:
                channel.close()

    def test_many_requests_one_connection(self):
        with TcpServer(echo_handler) as server:
            channel = TcpChannel(server.host, server.port)
            try:
                for i in range(50):
                    assert channel.request(f"{i}".encode()) == f"echo:{i}".encode()
            finally:
                channel.close()

    def test_concurrent_clients(self):
        with TcpServer(echo_handler) as server:
            errors = []

            def worker(worker_id: int):
                channel = TcpChannel(server.host, server.port)
                try:
                    for i in range(20):
                        expected = f"echo:{worker_id}-{i}".encode()
                        if channel.request(f"{worker_id}-{i}".encode()) != expected:
                            errors.append((worker_id, i))
                finally:
                    channel.close()

            threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []

    def test_large_payload(self):
        with TcpServer(echo_handler) as server:
            channel = TcpChannel(server.host, server.port)
            try:
                blob = bytes(range(256)) * 4096  # 1 MiB
                assert channel.request(blob) == b"echo:" + blob
            finally:
                channel.close()

    def test_connection_refused(self):
        channel = TcpChannel("127.0.0.1", 1)  # nothing listens on port 1
        with pytest.raises(TransportError):
            channel.request(b"x")

    def test_address_property(self):
        with TcpServer(echo_handler) as server:
            assert server.address == f"tcp://{server.host}:{server.port}"

    def test_reconnect_after_server_side_drop(self):
        """A fresh request after an idle drop retries on a new socket."""
        with TcpServer(echo_handler) as server:
            channel = TcpChannel(server.host, server.port)
            try:
                assert channel.request(b"one") == b"echo:one"
                channel._drop_connection()  # simulate idle-out
                assert channel.request(b"two") == b"echo:two"
            finally:
                channel.close()


class TestCorrelatedFraming:
    def test_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            write_frame_corr(a, 7, b"hello")
            assert read_frame_corr(b) == (7, b"hello")
        finally:
            a.close()
            b.close()

    def test_interleaved_ids_preserved(self):
        a, b = socket.socketpair()
        try:
            for corr_id in (3, 1, 2):
                write_frame_corr(a, corr_id, f"p{corr_id}".encode())
            seen = [read_frame_corr(b) for _ in range(3)]
            assert seen == [(3, b"p3"), (1, b"p1"), (2, b"p2")]
        finally:
            a.close()
            b.close()

    def test_preamble_cannot_be_a_legal_plain_frame(self):
        """The detection trick: the magic, read as a length header, must
        announce an illegally oversized frame."""
        announced = int.from_bytes(PIPELINE_PREAMBLE[:4], "big")
        assert announced > MAX_FRAME_BYTES


class TestPipelinedTcp:
    def test_request_response(self):
        with TcpServer(echo_handler) as server:
            channel = PipelinedTcpChannel(server.host, server.port)
            try:
                assert channel.request(b"piped") == b"echo:piped"
                assert channel.in_flight == 0
            finally:
                channel.close()

    def test_many_requests_one_connection(self):
        with TcpServer(echo_handler) as server:
            channel = PipelinedTcpChannel(server.host, server.port)
            try:
                for i in range(50):
                    assert channel.request(f"{i}".encode()) == f"echo:{i}".encode()
            finally:
                channel.close()

    def test_concurrent_callers_demuxed_correctly(self):
        with TcpServer(echo_handler) as server:
            channel = PipelinedTcpChannel(server.host, server.port)
            errors = []

            def worker(worker_id: int):
                for i in range(20):
                    payload = f"{worker_id}-{i}".encode()
                    if channel.request(payload) != b"echo:" + payload:
                        errors.append((worker_id, i))

            try:
                threads = [
                    threading.Thread(target=worker, args=(n,)) for n in range(8)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                assert errors == []
                assert channel.max_in_flight >= 2  # calls really overlapped
                assert server.live_connections == 1  # on ONE connection
            finally:
                channel.close()

    def test_fast_reply_overtakes_slow_call(self):
        """The head-of-line-blocking fix: a fast call completes while a
        slow one is still in flight on the same connection."""

        def handler(request: bytes) -> bytes:
            if request == b"slow":
                time.sleep(0.3)
            return b"echo:" + request

        with TcpServer(handler) as server:
            channel = PipelinedTcpChannel(server.host, server.port)
            try:
                slow = threading.Thread(target=channel.request, args=(b"slow",))
                slow.start()
                deadline = time.monotonic() + 2.0
                while channel.in_flight == 0 and time.monotonic() < deadline:
                    time.sleep(0.001)  # wait for the slow send to land
                started = time.monotonic()
                assert channel.request(b"fast") == b"echo:fast"
                elapsed = time.monotonic() - started
                slow.join()
                assert elapsed < 0.25  # did not wait behind the slow reply
                assert channel.max_in_flight == 2
            finally:
                channel.close()

    def test_deadline_abandons_call_but_keeps_connection(self):
        def handler(request: bytes) -> bytes:
            if request == b"stall":
                time.sleep(0.5)
            return b"echo:" + request

        with TcpServer(handler) as server:
            channel = PipelinedTcpChannel(server.host, server.port)
            try:
                with pytest.raises(DeadlineExceededError):
                    channel.request(b"stall", timeout=0.05)
                assert channel.in_flight == 0
                # The late reply is dropped by the reader; the connection
                # keeps serving subsequent calls.
                assert channel.request(b"after") == b"echo:after"
            finally:
                channel.close()

    def test_broken_connection_fails_pending_and_reconnects(self):
        with TcpServer(echo_handler) as server:
            channel = PipelinedTcpChannel(server.host, server.port)
            try:
                assert channel.request(b"one") == b"echo:one"
                with channel._state_lock:
                    sock = channel._sock
                sock.shutdown(socket.SHUT_RDWR)  # simulate a mid-life break
                deadline = time.monotonic() + 2.0
                while channel._sock is not None and time.monotonic() < deadline:
                    time.sleep(0.001)
                # A fresh request transparently reconnects (the retry
                # layer, not the channel, decides about resending).
                assert channel.request(b"two") == b"echo:two"
            finally:
                channel.close()

    def test_send_failure_raises_retryable(self):
        channel = PipelinedTcpChannel("127.0.0.1", 1)  # nothing listens
        with pytest.raises(RetryableError):
            channel.request(b"x")

    def test_plain_and_pipelined_share_one_server(self):
        """Framing auto-detect: both client framings against one port."""
        with TcpServer(echo_handler) as server:
            plain = TcpChannel(server.host, server.port)
            piped = PipelinedTcpChannel(server.host, server.port)
            try:
                assert plain.request(b"a") == b"echo:a"
                assert piped.request(b"b") == b"echo:b"
                assert plain.request(b"c") == b"echo:c"
            finally:
                plain.close()
                piped.close()

    def test_resolver_caches_framings_separately(self):
        with TcpServer(echo_handler) as server:
            resolver = ChannelResolver()
            try:
                plain = resolver.resolve(server.address)
                piped = resolver.resolve(server.address, pipelined=True)
                assert isinstance(plain, TcpChannel)
                assert isinstance(piped, PipelinedTcpChannel)
                assert resolver.resolve(server.address, pipelined=True) is piped
                assert resolver.resolve(server.address) is plain
            finally:
                resolver.close_all()

    def test_pipelined_flag_ignored_off_tcp(self):
        resolver = ChannelResolver()
        address = resolver.register_inproc("svc", echo_handler)
        channel = resolver.resolve(address, pipelined=True)
        assert isinstance(channel, InProcChannel)
        assert resolver.resolve(address) is channel


class TestSimulatedChannel:
    def test_accounts_transfer_time(self):
        model = NetworkModel(
            bandwidth_bits_per_s=8_000, latency_s=0.5, protocol_overhead_bytes=0
        )
        channel = SimulatedChannel(InProcChannel(echo_handler), model)
        channel.request(b"x" * 1000)  # 1000 bytes up, 1005 down
        # Each direction: 0.5 latency + bytes*8/8000 = 0.5 + bytes/1000.
        expected = (0.5 + 1.0) + (0.5 + 1.005)
        assert channel.simulated_seconds == pytest.approx(expected)

    def test_loopback_model_costs_nothing(self):
        channel = SimulatedChannel(InProcChannel(echo_handler), LOOPBACK_MODEL)
        channel.request(b"payload")
        assert channel.simulated_seconds == 0.0

    def test_reset_account(self):
        channel = SimulatedChannel(InProcChannel(echo_handler), NetworkModel())
        channel.request(b"x")
        assert channel.simulated_seconds > 0
        channel.reset_account()
        assert channel.simulated_seconds == 0.0

    def test_accumulates_across_requests(self):
        model = NetworkModel(latency_s=0.1, bandwidth_bits_per_s=float("inf"),
                             protocol_overhead_bytes=0)
        channel = SimulatedChannel(InProcChannel(echo_handler), model)
        channel.request(b"a")
        channel.request(b"b")
        assert channel.simulated_seconds == pytest.approx(0.4)

    def test_payload_passes_through(self):
        channel = SimulatedChannel(InProcChannel(echo_handler), NetworkModel())
        assert channel.request(b"data") == b"echo:data"


class TestResolver:
    def test_inproc_registration_and_resolve(self):
        resolver = ChannelResolver()
        address = resolver.register_inproc("svc", echo_handler)
        assert address == "inproc://svc"
        assert resolver.resolve(address).request(b"q") == b"echo:q"

    def test_channel_cached(self):
        resolver = ChannelResolver()
        address = resolver.register_inproc("svc", echo_handler)
        assert resolver.resolve(address) is resolver.resolve(address)

    def test_unknown_inproc_raises(self):
        with pytest.raises(TransportError):
            ChannelResolver().resolve("inproc://ghost")

    def test_unregister(self):
        resolver = ChannelResolver()
        address = resolver.register_inproc("svc", echo_handler)
        resolver.unregister_inproc("svc")
        with pytest.raises(TransportError):
            resolver.resolve(address)

    def test_malformed_addresses(self):
        resolver = ChannelResolver()
        for bad in ("tcp://nohost", "tcp://host:notaport", "udp://x", "plain"):
            with pytest.raises(TransportError):
                resolver.resolve(bad)

    def test_wrapper_applied(self):
        resolver = ChannelResolver()
        address = resolver.register_inproc("svc", echo_handler)
        resolver.set_wrapper(
            address, lambda inner: SimulatedChannel(inner, NetworkModel())
        )
        channel = resolver.resolve(address)
        assert isinstance(channel, SimulatedChannel)

    def test_wrapper_removal(self):
        resolver = ChannelResolver()
        address = resolver.register_inproc("svc", echo_handler)
        resolver.set_wrapper(address, lambda inner: SimulatedChannel(inner, NetworkModel()))
        resolver.set_wrapper(address, None)
        assert isinstance(resolver.resolve(address), InProcChannel)

    def test_tcp_resolution(self):
        with TcpServer(echo_handler) as server:
            resolver = ChannelResolver()
            channel = resolver.resolve(server.address)
            try:
                assert channel.request(b"via-resolver") == b"echo:via-resolver"
            finally:
                resolver.close_all()

    def test_drop_closes_channel(self):
        resolver = ChannelResolver()
        address = resolver.register_inproc("svc", echo_handler)
        channel = resolver.resolve(address)
        resolver.drop(address)
        with pytest.raises(TransportError):
            channel.request(b"x")


class TestChannelStats:
    def test_record_and_reset(self):
        stats = ChannelStats()
        stats.record(sent=10, received=20)
        stats.record(sent=1, received=2)
        assert stats.snapshot() == {
            "requests": 2,
            "bytes_sent": 11,
            "bytes_received": 22,
        }
        stats.reset()
        assert stats.snapshot()["requests"] == 0


requires_af_unix = pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="platform lacks AF_UNIX"
)


@requires_af_unix
class TestUds:
    def test_request_response_over_socket(self):
        with UdsServer(echo_handler) as server:
            channel = UdsChannel(server.path)
            try:
                assert channel.request(b"over-uds") == b"echo:over-uds"
            finally:
                channel.close()

    def test_address_property_and_unlink_on_stop(self):
        server = UdsServer(echo_handler)
        assert server.address == f"uds://{server.path}"
        assert os.path.exists(server.path)
        server.stop()
        assert not os.path.exists(server.path)

    def test_explicit_path_and_stale_socket_reclaimed(self, tmp_path):
        path = str(tmp_path / "ep.sock")
        with UdsServer(echo_handler, path=path) as server:
            assert server.path == path
        # A crashed predecessor leaves the file behind; binding again
        # must reclaim it rather than fail with EADDRINUSE.
        open(path, "w").close()
        with UdsServer(echo_handler, path=path) as server:
            channel = UdsChannel(server.path)
            try:
                assert channel.request(b"again") == b"echo:again"
            finally:
                channel.close()

    def test_connection_refused(self):
        channel = UdsChannel("/nonexistent/nrmi-test.sock")
        with pytest.raises(RetryableError):
            channel.request(b"x")

    def test_plain_and_pipelined_share_one_server(self):
        with UdsServer(echo_handler) as server:
            plain = UdsChannel(server.path)
            piped = PipelinedUdsChannel(server.path)
            try:
                assert plain.request(b"plain") == b"echo:plain"
                assert piped.request(b"piped") == b"echo:piped"
                assert plain.request(b"plain2") == b"echo:plain2"
            finally:
                plain.close()
                piped.close()

    def test_pipelined_concurrent_callers(self):
        with UdsServer(echo_handler) as server:
            channel = PipelinedUdsChannel(server.path)
            errors = []

            def worker(worker_id: int):
                for i in range(10):
                    expected = f"echo:{worker_id}-{i}".encode()
                    if channel.request(f"{worker_id}-{i}".encode()) != expected:
                        errors.append((worker_id, i))

            threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            channel.close()
            assert errors == []


class TestUdsResolution:
    @requires_af_unix
    def test_resolver_parses_uds_addresses(self):
        with UdsServer(echo_handler) as server:
            resolver = ChannelResolver()
            try:
                plain = resolver.resolve(server.address)
                piped = resolver.resolve(server.address, pipelined=True)
                assert isinstance(plain, UdsChannel)
                assert isinstance(piped, PipelinedUdsChannel)
                assert plain.path == server.path
                assert resolver.resolve(server.address) is plain
                assert resolver.resolve(server.address, pipelined=True) is piped
                assert plain.request(b"via-resolver") == b"echo:via-resolver"
            finally:
                resolver.close_all()

    @requires_af_unix
    def test_malformed_uds_address_rejected(self):
        resolver = ChannelResolver()
        with pytest.raises(TransportError, match="malformed uds address"):
            resolver.resolve("uds://")

    def test_non_posix_platform_gets_clear_error(self, monkeypatch):
        """Without AF_UNIX the resolver must say so, not crash obscurely."""
        import repro.transport.uds as uds_mod

        monkeypatch.delattr(uds_mod.socket, "AF_UNIX", raising=False)
        resolver = ChannelResolver()
        with pytest.raises(TransportError, match="requires AF_UNIX"):
            resolver.resolve("uds:///tmp/never.sock")
