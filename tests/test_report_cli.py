"""The table-report CLI: argument handling and output shape."""

import pytest

from repro.bench import report
from repro.bench.tables import (
    PAPER_TABLE2,
    PAPER_TABLE5_JDK14,
    PAPER_TABLE6,
    SIZES,
    paper_expectations,
)


class TestTablesData:
    def test_sizes_match_paper(self):
        assert SIZES == (16, 64, 256, 1024)

    def test_paper_table2_modern_faster(self):
        for scenario in ("I", "II", "III"):
            for size in SIZES:
                assert (
                    PAPER_TABLE2["jdk14"][scenario][size]
                    <= PAPER_TABLE2["jdk13"][scenario][size]
                )

    def test_paper_table5_optimized_not_slower(self):
        for scenario, row in PAPER_TABLE5_JDK14.items():
            for size, (portable, optimized) in row.items():
                assert optimized <= portable

    def test_paper_table6_1024_failed(self):
        for jdk in ("jdk13", "jdk14"):
            for scenario in ("I", "II", "III"):
                assert PAPER_TABLE6[jdk][scenario][1024] is None

    def test_expectations_documented(self):
        expectations = paper_expectations()
        assert "remote-ref" in expectations
        assert len(expectations) >= 5


class TestCli:
    def test_no_args_prints_help(self, capsys):
        assert report.main([]) == 2
        assert "Regenerate" in capsys.readouterr().out

    def test_loc_only(self, capsys):
        assert report.main(["--loc"]) == 0
        out = capsys.readouterr().out
        assert "scenario III" in out
        assert "NRMI version : 0 extra lines" in out

    def test_single_small_table(self, capsys):
        assert report.main(["--table", "1", "--reps", "1", "--sizes", "16"]) == 0
        out = capsys.readouterr().out
        assert "Local Execution" in out
        assert "III" in out

    def test_compare_mode_shows_paper_values(self, capsys):
        assert (
            report.main(
                ["--table", "2", "--reps", "1", "--sizes", "16", "--compare"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "(" in out  # paper value in parentheses

    def test_invalid_table_rejected(self):
        with pytest.raises(SystemExit):
            report.main(["--table", "9"])

    def test_table6_runs_small(self, capsys):
        assert report.main(["--table", "6", "--reps", "1", "--sizes", "16"]) == 0
        assert "Remote References" in capsys.readouterr().out
