"""Serialization edge cases the main suites don't reach."""

import pytest

from repro.errors import SerializationError, WireFormatError
from repro.serde.reader import ObjectReader
from repro.serde.registry import ClassRegistry, Externalizer, global_registry
from repro.serde.writer import ObjectWriter
from repro.serde.profiles import LEGACY_PROFILE

from tests.model_helpers import Box, Node, Pair


def roundtrip(value, **kwargs):
    writer = ObjectWriter(**kwargs)
    writer.write_root(value)
    reader = ObjectReader(writer.getvalue(), **kwargs)
    result = reader.read_root()
    reader.expect_end()
    return result


class TestIntegerBoundaries:
    @pytest.mark.parametrize(
        "value",
        [2**63 - 1, -(2**63), 2**63, -(2**63) - 1, 2**64, 2**127, -(2**255)],
    )
    def test_int64_edge_and_big(self, value):
        assert roundtrip(value) == value

    def test_zero_magnitude_bigint(self):
        # 2**63 encodes as INT_BIG; 0 stays INT — both paths meet at edges.
        assert roundtrip(0) == 0


class TestContainersDeepAndWide:
    def test_wide_dict(self):
        value = {i: i * 2 for i in range(5000)}
        assert roundtrip(value) == value

    def test_empty_everything_nested(self):
        value = [[], {}, set(), (), frozenset(), b"", ""]
        result = roundtrip(value)
        assert result == value

    def test_bytearray_inside_object(self):
        box = Box(bytearray(b"mutable-field"))
        result = roundtrip(box)
        assert result.payload == bytearray(b"mutable-field")
        assert isinstance(result.payload, bytearray)

    def test_complex_inside_structure(self):
        value = {"z": complex(1, -1), "list": [complex(0, 2)]}
        assert roundtrip(value) == value

    def test_unicode_stress(self):
        value = "\x00é☃\U0001f600 mixed \t\n"
        assert roundtrip(value) == value

    def test_surrogatepass_not_needed(self):
        # Lone surrogates are not valid UTF-8; they must raise cleanly.
        with pytest.raises((SerializationError, UnicodeEncodeError, WireFormatError)):
            roundtrip("\ud800")


class TestExternalizerMechanics:
    def _make_ext(self, name, log):
        return Externalizer(
            name=name,
            claims=lambda obj: isinstance(obj, Node) and obj.data == "claimed",
            replace=lambda obj: log.append("replace") or b"payload",
            resolve=lambda payload: log.append("resolve") or Node("resolved"),
        )

    def test_local_externalizer_round_trip(self):
        log = []
        ext = self._make_ext("test.ext", log)
        writer = ObjectWriter(externalizers=(ext,))
        writer.write_root([Node("claimed"), Node("plain")])
        reader = ObjectReader(writer.getvalue(), externalizers=(ext,))
        result = reader.read_root()
        assert result[0].data == "resolved"
        assert result[1].data == "plain"
        assert log == ["replace", "resolve"]

    def test_externalized_object_shared_identity(self):
        log = []
        ext = self._make_ext("test.ext2", log)
        node = Node("claimed")
        writer = ObjectWriter(externalizers=(ext,))
        writer.write_root([node, node])
        reader = ObjectReader(writer.getvalue(), externalizers=(ext,))
        result = reader.read_root()
        assert result[0] is result[1]  # memoized via the handle table
        assert log.count("resolve") == 1

    def test_missing_externalizer_on_reader(self):
        log = []
        ext = self._make_ext("test.only-writer", log)
        writer = ObjectWriter(externalizers=(ext,))
        writer.write_root(Node("claimed"))
        with pytest.raises(SerializationError, match="externalizer"):
            ObjectReader(writer.getvalue()).read_root()

    def test_externalized_objects_not_in_linear_map(self):
        log = []
        ext = self._make_ext("test.ext3", log)
        writer = ObjectWriter(externalizers=(ext,))
        writer.write_root([Node("claimed")])
        assert all(
            not (isinstance(obj, Node) and obj.data == "claimed")
            for obj in writer.linear_map
        )


class TestProfilesInterplay:
    def test_object_graph_legacy_to_modern(self):
        graph = Box({"nodes": [Node(i) for i in range(5)], "pair": Pair(1, 2)})
        writer = ObjectWriter(profile=LEGACY_PROFILE)
        writer.write_root(graph)
        result = ObjectReader(writer.getvalue()).read_root()  # modern reader
        assert result.payload["pair"].second == 2

    def test_legacy_rejects_duplicate_field_names(self):
        """The legacy validation pass at work (impossible normally; forged
        via a class whose accessor reports a duplicate)."""
        from repro.serde.profiles import SerializationProfile
        from repro.serde.accessors import PortableAccessor

        class LyingAccessor(PortableAccessor):
            def get_state(self, obj):
                return [("f", 1), ("f", 2)]

        profile = SerializationProfile(
            name="lying",
            accessor=LyingAccessor(),
            intern_descriptors=False,
            per_object_validation=True,
        )
        writer = ObjectWriter(profile=profile)
        with pytest.raises(SerializationError, match="duplicate"):
            writer.write_root(Box(1))


class TestRegistryMore:
    def test_snapshot_classes(self):
        registry = ClassRegistry()

        class Snap:
            pass

        registry.register(Snap, name="snap")
        assert registry.snapshot_classes() == {"snap": Snap}

    def test_register_non_class_rejected(self):
        with pytest.raises(SerializationError):
            ClassRegistry().register("not-a-class")

    def test_name_of_unregistered(self):
        from repro.errors import ClassNotRegisteredError

        class Ghost:
            pass

        with pytest.raises(ClassNotRegisteredError):
            ClassRegistry().name_of(Ghost)

    def test_global_registry_has_markers_subclasses(self):
        assert global_registry.is_registered(Box)
        assert global_registry.is_registered(Pair)
