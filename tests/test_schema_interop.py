"""Session schema-cache interop: negotiation matrix + invalidation.

The schema cache is a negotiated, per-connection layer (CAP_SCHEMA_CACHE
on calls, the ack bit on OK replies): class descriptors and field-name
tables ship once, then collapse to compact ids. Every cell of the matrix
— cache on/off x modern/legacy profile x all four transports — must
restore the client heap byte-identically to running the same mutation
locally; the cache must *engage* only where it should (modern profile,
both sides opted in), and a mid-connection ``__nrmi_version__`` bump must
renegotiate a fresh schema id without dropping the connection.

Also here: the fused decode+digest traversal-count assertions and the
reader's dangling-id error paths for handcrafted hostile streams.
"""

import pytest

from repro.core.markers import Remote, Restorable
from repro.errors import WireFormatError
from repro.nrmi.config import NRMIConfig
from repro.nrmi.runtime import Endpoint
from repro.serde import digest
from repro.serde.hooks import class_version
from repro.serde.reader import ObjectReader
from repro.serde.registry import global_registry
from repro.serde.schema import (
    CKEY_SCHEMA_REF,
    CKEY_STREAM_BASE,
    STREAM_FLAG_SCHEMA_CACHE,
    SchemaRxCache,
)
from repro.serde.tags import Tag, WIRE_MAGIC, WIRE_VERSION
from repro.transport.resolver import ChannelResolver
from repro.transport.simnet import NetworkModel, SimulatedChannel
from repro.util.buffers import BufferWriter

from tests.model_helpers import Box, Node, heap_fingerprint

# "tcp" and "pipelined" hit the same server (it auto-detects framing per
# connection); the client config selects the channel. The "uds" pair is
# the same split over a Unix domain socket, and the "shm" pair over a
# shared-memory ring pair with a Unix-socket doorbell.
TRANSPORTS = (
    "inproc",
    "simnet",
    "tcp",
    "pipelined",
    "uds",
    "uds-pipelined",
    "shm",
    "shm-pipelined",
)

PROFILES = {
    # profile name -> (profile, implementation) config arguments
    "modern": ("modern", "optimized"),
    "legacy": ("legacy", "portable"),
}


class ScrambleService(Remote):
    """Sparse mutation over an aliased heap (same shape as delta interop)."""

    def scramble(self, box):
        first = box.payload[0]
        first.data = ("touched", first.data)
        fresh = Node("fresh")
        fresh.next = first
        box.payload.append(fresh)
        return fresh


def make_heap(width=8):
    nodes = [Node(i) for i in range(width)]
    for left, right in zip(nodes, nodes[1:]):
        left.next = right
    box = Box(list(nodes))
    box.alias = nodes[3]
    return box


def local_fingerprint():
    box = make_heap()
    result = ScrambleService().scramble(box)
    return heap_fingerprint([box, result])


def client_config(transport, **kwargs):
    kwargs.setdefault(
        "tcp_pipelined",
        transport in ("pipelined", "uds-pipelined", "shm-pipelined"),
    )
    return NRMIConfig(**kwargs)


class SchemaWorld:
    """One client/server pair over the requested transport."""

    def __init__(self, transport, server_config=None, client_config=None,
                 service=None):
        self.resolver = ChannelResolver()
        self.server = Endpoint(
            name="schema-server", config=server_config, resolver=self.resolver
        )
        self.client = Endpoint(
            name="schema-client", config=client_config, resolver=self.resolver
        )
        self.server.bind("svc", service if service is not None else ScrambleService())
        address = self.server.address
        if transport in ("tcp", "pipelined"):
            address = self.server.serve_tcp()
        elif transport in ("uds", "uds-pipelined"):
            address = self.server.serve_uds()
        elif transport in ("shm", "shm-pipelined"):
            address = self.server.serve_shm()
        elif transport == "simnet":
            self.resolver.set_wrapper(
                address,
                lambda inner: SimulatedChannel(inner, NetworkModel()),
            )
        self.address = address
        self.service = self.client.lookup(address, "svc")

    @property
    def channel(self):
        """The channel the client's calls actually travel (framing-aware)."""
        return self.client.channel_to(self.address)

    def scramble_fingerprint(self):
        box = make_heap()
        result = self.service.scramble(box)
        return heap_fingerprint([box, result])

    def close(self):
        self.client.close()
        self.server.close()
        self.resolver.close_all()


@pytest.fixture(params=TRANSPORTS)
def transport(request):
    return request.param


# --------------------------------------------------------------- the matrix


@pytest.mark.parametrize("profile_name", sorted(PROFILES))
@pytest.mark.parametrize("cache_on", (True, False), ids=("cache", "nocache"))
def test_matrix_round_trips_byte_identically(transport, profile_name, cache_on):
    profile, implementation = PROFILES[profile_name]
    world = SchemaWorld(
        transport,
        server_config=NRMIConfig(profile=profile, implementation=implementation),
        client_config=client_config(
            transport,
            profile=profile,
            implementation=implementation,
            schema_cache=cache_on,
        ),
    )
    try:
        expected = local_fingerprint()
        # Three calls so the cache (when on) walks the whole negotiation:
        # unflagged + ack, then definitions, then steady-state references.
        for _ in range(3):
            assert world.scramble_fingerprint() == expected
        session = world.channel.schema_session
        if not cache_on:
            # The client never advertised; the session never engages.
            assert session.peer_ok is False
            assert len(session.tx) == 0
        else:
            # The server acked the capability on the first OK reply.
            assert session.peer_ok is True
            if profile_name == "modern":
                assert len(session.tx) > 0
            else:
                # Legacy streams don't intern descriptors, so the writer
                # downgrades to classic unflagged streams: negotiated but
                # never engaged, and the peer never sees schema-mode bytes.
                assert len(session.tx) == 0
    finally:
        world.close()


def test_client_against_legacy_server(transport):
    """A server with the cache disabled never acks: the client keeps
    sending classic streams forever and everything still round-trips."""
    world = SchemaWorld(
        transport,
        server_config=NRMIConfig(schema_cache=False),
        client_config=client_config(transport),
    )
    try:
        expected = local_fingerprint()
        for _ in range(3):
            assert world.scramble_fingerprint() == expected
        session = world.channel.schema_session
        assert session.peer_ok is False
        assert len(session.tx) == 0
    finally:
        world.close()


def test_schema_cache_shrinks_steady_state_requests():
    """Steady-state request frames are strictly smaller with the cache on
    (class descriptors and field names have collapsed to ids)."""
    sizes = {}
    for cache_on in (True, False):
        world = SchemaWorld(
            "inproc", client_config=NRMIConfig(schema_cache=cache_on)
        )
        try:
            for _ in range(3):
                world.scramble_fingerprint()
            channel = world.resolver.resolve(world.address)
            channel.stats.reset()
            world.scramble_fingerprint()
            sizes[cache_on] = channel.stats.snapshot()["bytes_sent"]
        finally:
            world.close()
    assert sizes[True] < sizes[False]


# ------------------------------------------------------- cache invalidation


class Counter(Restorable):
    __nrmi_version__ = 1

    def __init__(self):
        self.count = 0
        self.label = "counter"


class BumpService(Remote):
    def bump(self, counter):
        counter.count += 1
        return counter.count


def test_version_bump_renegotiates_mid_connection():
    """Bumping ``__nrmi_version__`` mid-connection allocates a fresh
    schema id (ids are never reused) and keeps round-tripping."""
    world = SchemaWorld("inproc", service=BumpService())
    try:
        for _ in range(3):
            counter = Counter()
            assert world.service.bump(counter) == 1
            assert counter.count == 1  # restored in place on the caller
        session = world.channel.schema_session
        assert session.peer_ok is True
        assert len(session.tx) == 1
        server_rx = world.resolver.resolve(world.address)._session.schema_rx
        assert len(server_rx) == 1
        old_id = session.tx._entries[Counter].schema_id
        original_version = Counter.__nrmi_version__
        try:
            Counter.__nrmi_version__ = original_version + 1
            for _ in range(2):  # def on the first call, ref on the second
                counter = Counter()
                assert world.service.bump(counter) == 1
                assert counter.count == 1
        finally:
            Counter.__nrmi_version__ = original_version
        assert len(session.tx) == 1  # same class, replaced entry ...
        assert session.tx._entries[Counter].schema_id != old_id
        assert len(server_rx) == 2  # ... but the old id stays resolvable
    finally:
        world.close()


# ---------------------------------------------------- fused digest traversal


def test_fused_delta_slots_call_walks_linear_map_once():
    """The decode-time capture replaces the post-decode snapshot walk:
    a warm delta-slots call digests the linear map exactly once (at reply
    time), not twice."""
    world = SchemaWorld("inproc", client_config=NRMIConfig(policy="delta"))
    try:
        world.scramble_fingerprint()  # warm: negotiation, plans, metrics
        before = digest.walk_count
        assert world.scramble_fingerprint() == local_fingerprint()
        assert digest.walk_count - before == 1
        # It really was the delta-slots path both times.
        assert world.client.metrics.counter("delta.slot_replies").value == 2
    finally:
        world.close()


def test_shipped_map_ablation_still_walks_twice():
    """The ship-linear-map ablation bypasses decode-time reconstruction,
    so there is nothing to fuse into: both walks remain."""
    world = SchemaWorld(
        "inproc",
        client_config=NRMIConfig(policy="delta", ship_linear_map=True),
    )
    try:
        world.scramble_fingerprint()
        before = digest.walk_count
        assert world.scramble_fingerprint() == local_fingerprint()
        assert digest.walk_count - before == 2
    finally:
        world.close()


# ------------------------------------------------- dangling-id error paths


def _stream(flags, build_body):
    buf = BufferWriter()
    buf.write_bytes(WIRE_MAGIC)
    buf.write_u8(WIRE_VERSION)
    buf.write_u8(flags)
    build_body(buf)
    return buf.getvalue()


def test_dangling_field_name_id_is_rejected():
    def body(buf):
        buf.write_u8(Tag.OBJECT)
        buf.write_uvarint(0)  # inline class descriptor
        buf.write_str(global_registry.name_of(Node))
        buf.write_uvarint(class_version(Node))
        buf.write_uvarint(1)  # one field ...
        buf.write_uvarint(5)  # ... whose name back-references nothing

    reader = ObjectReader(_stream(0, body))
    with pytest.raises(WireFormatError, match="dangling name id 5"):
        reader.read_root()


def test_dangling_class_id_is_rejected():
    def body(buf):
        buf.write_u8(Tag.OBJECT)
        buf.write_uvarint(4)  # back reference, but no class was interned

    reader = ObjectReader(_stream(0, body))
    with pytest.raises(WireFormatError, match="dangling class id 4"):
        reader.read_root()


def test_dangling_schema_id_is_rejected():
    def body(buf):
        buf.write_u8(Tag.OBJECT)
        buf.write_uvarint(CKEY_SCHEMA_REF)
        buf.write_uvarint(9)  # never defined on this connection

    reader = ObjectReader(
        _stream(STREAM_FLAG_SCHEMA_CACHE, body), schema_rx=SchemaRxCache()
    )
    with pytest.raises(WireFormatError, match="dangling schema id 9"):
        reader.read_root()


def test_dangling_stream_backref_on_schema_stream_is_rejected():
    def body(buf):
        buf.write_u8(Tag.OBJECT)
        buf.write_uvarint(CKEY_STREAM_BASE)  # stream class 0: none interned

    reader = ObjectReader(
        _stream(STREAM_FLAG_SCHEMA_CACHE, body), schema_rx=SchemaRxCache()
    )
    with pytest.raises(WireFormatError, match="dangling class id"):
        reader.read_root()


def test_flagged_stream_without_session_cache_is_rejected():
    """A schema-mode stream handed to a stateless decode (no per-connection
    rx cache) must fail loudly, not misparse class keys."""
    data = _stream(STREAM_FLAG_SCHEMA_CACHE, lambda buf: buf.write_u8(Tag.NONE))
    with pytest.raises(WireFormatError, match="without a session schema"):
        ObjectReader(data)
