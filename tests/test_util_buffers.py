"""BufferWriter / BufferReader: encodings, bounds, corruption handling."""

import pytest

from repro.errors import WireFormatError
from repro.util.buffers import BufferReader, BufferWriter


def roundtrip(write, read):
    writer = BufferWriter()
    write(writer)
    reader = BufferReader(writer.getvalue())
    value = read(reader)
    reader.expect_end()
    return value


class TestFixedWidth:
    def test_u8(self):
        assert roundtrip(lambda w: w.write_u8(200), lambda r: r.read_u8()) == 200

    def test_u32(self):
        value = 0xDEADBEEF
        assert roundtrip(lambda w: w.write_u32(value), lambda r: r.read_u32()) == value

    def test_i64_negative(self):
        value = -(1 << 62)
        assert roundtrip(lambda w: w.write_i64(value), lambda r: r.read_i64()) == value

    def test_f64(self):
        value = 3.14159265358979
        assert roundtrip(lambda w: w.write_f64(value), lambda r: r.read_f64()) == value

    def test_f64_special_values(self):
        for value in (float("inf"), float("-inf"), 0.0, -0.0):
            assert (
                roundtrip(lambda w: w.write_f64(value), lambda r: r.read_f64())
                == value
            )

    def test_f64_nan(self):
        result = roundtrip(lambda w: w.write_f64(float("nan")), lambda r: r.read_f64())
        assert result != result


class TestVarints:
    @pytest.mark.parametrize(
        "value",
        [0, 1, -1, 63, 64, -64, -65, 127, 128, 300, -300, 2**40, -(2**40),
         2**63 - 1, -(2**63)],
    )
    def test_varint_roundtrip(self, value):
        assert (
            roundtrip(lambda w: w.write_varint(value), lambda r: r.read_varint())
            == value
        )

    @pytest.mark.parametrize("value", [0, 1, 127, 128, 16384, 2**32, 2**63])
    def test_uvarint_roundtrip(self, value):
        assert (
            roundtrip(lambda w: w.write_uvarint(value), lambda r: r.read_uvarint())
            == value
        )

    def test_uvarint_rejects_negative(self):
        writer = BufferWriter()
        with pytest.raises(WireFormatError):
            writer.write_uvarint(-1)

    def test_varint_rejects_oversized(self):
        writer = BufferWriter()
        with pytest.raises(WireFormatError):
            writer.write_varint(1 << 64)

    def test_small_values_are_one_byte(self):
        writer = BufferWriter()
        writer.write_uvarint(5)
        assert len(writer.getvalue()) == 1

    def test_uvarint_corrupt_unterminated(self):
        reader = BufferReader(b"\xff" * 11)
        with pytest.raises(WireFormatError):
            reader.read_uvarint()


class TestBytesAndStrings:
    def test_len_bytes(self):
        data = b"hello world"
        assert (
            roundtrip(lambda w: w.write_len_bytes(data), lambda r: r.read_len_bytes())
            == data
        )

    def test_empty_bytes(self):
        assert (
            roundtrip(lambda w: w.write_len_bytes(b""), lambda r: r.read_len_bytes())
            == b""
        )

    def test_str_unicode(self):
        text = "héllo ☃ wörld — ünïcode"
        assert roundtrip(lambda w: w.write_str(text), lambda r: r.read_str()) == text

    def test_str_invalid_utf8_raises(self):
        writer = BufferWriter()
        writer.write_len_bytes(b"\xff\xfe")
        with pytest.raises(WireFormatError):
            BufferReader(writer.getvalue()).read_str()


class TestBounds:
    def test_truncated_read_raises(self):
        reader = BufferReader(b"\x01\x02")
        with pytest.raises(WireFormatError):
            reader.read_bytes(3)

    def test_read_past_end_raises(self):
        reader = BufferReader(b"")
        with pytest.raises(WireFormatError):
            reader.read_u8()

    def test_expect_end_raises_on_trailing(self):
        reader = BufferReader(b"\x00\x01")
        reader.read_u8()
        with pytest.raises(WireFormatError):
            reader.expect_end()

    def test_position_and_remaining(self):
        reader = BufferReader(b"\x00\x01\x02")
        assert reader.position == 0
        assert reader.remaining == 3
        reader.read_u8()
        assert reader.position == 1
        assert reader.remaining == 2

    def test_writer_accumulates(self):
        writer = BufferWriter()
        writer.write_u8(1)
        writer.write_u32(2)
        assert len(writer) == 5

    def test_getvalue_stable_across_calls(self):
        writer = BufferWriter()
        writer.write_str("abc")
        assert writer.getvalue() == writer.getvalue()

    def test_interleaved_sequence(self):
        writer = BufferWriter()
        writer.write_u8(9)
        writer.write_str("mix")
        writer.write_varint(-5)
        writer.write_len_bytes(b"\x00\x01")
        reader = BufferReader(writer.getvalue())
        assert reader.read_u8() == 9
        assert reader.read_str() == "mix"
        assert reader.read_varint() == -5
        assert reader.read_len_bytes() == b"\x00\x01"
        reader.expect_end()


class TestVarintBoundaries:
    """The 64-bit varint envelope, hit exactly at its edges."""

    @pytest.mark.parametrize(
        "value",
        [0, 1, -1, 2**63 - 1, -(2**63 - 1), -(2**63), 2**62, -(2**62)],
    )
    def test_round_trip_at_boundaries(self, value):
        assert (
            roundtrip(lambda w: w.write_varint(value), lambda r: r.read_varint())
            == value
        )

    @pytest.mark.parametrize("value", [2**63, -(2**63) - 1, 2**100])
    def test_overflow_raises(self, value):
        writer = BufferWriter()
        with pytest.raises(WireFormatError):
            writer.write_varint(value)

    def test_uvarint_rejects_negative(self):
        with pytest.raises(WireFormatError):
            BufferWriter().write_uvarint(-1)

    def test_corrupt_overlong_uvarint_raises(self):
        # Eleven continuation bytes exceed any 64-bit value.
        reader = BufferReader(b"\xff" * 11 + b"\x01")
        with pytest.raises(WireFormatError):
            reader.read_uvarint()


class TestTruncatedStreams:
    """Every memoryview-reader primitive fails cleanly at end-of-data."""

    @pytest.mark.parametrize(
        "data, read",
        [
            (b"", lambda r: r.read_u8()),
            (b"\x01\x02", lambda r: r.read_u32()),
            (b"\x01" * 7, lambda r: r.read_i64()),
            (b"\x01" * 7, lambda r: r.read_f64()),
            (b"\x80", lambda r: r.read_uvarint()),  # continuation, then EOF
            (b"\x05ab", lambda r: r.read_len_bytes()),  # length > remaining
            (b"\x05ab", lambda r: r.read_str()),
            (b"ab", lambda r: r.read_bytes(3)),
            (b"ab", lambda r: r.read_view(3)),
            (b"", lambda r: r.peek_u8()),
        ],
    )
    def test_truncated_read_raises(self, data, read):
        reader = BufferReader(data)
        with pytest.raises(WireFormatError):
            read(reader)

    def test_memoryview_input_round_trip(self):
        writer = BufferWriter()
        writer.write_str("through a view")
        reader = BufferReader(memoryview(writer.getvalue()))
        assert reader.read_str() == "through a view"

    def test_read_view_is_zero_copy(self):
        backing = bytearray(b"\x03abcrest")
        reader = BufferReader(backing)
        view = reader.read_view(4)
        assert bytes(view) == b"\x03abc"
        backing[1] = ord("z")
        assert bytes(view) == b"\x03zbc"  # a view, not a copy
        view.release()


class TestChunkedLegacyCompatibility:
    """The legacy chunk-list writer and the new writer emit identical bytes,
    and old-writer streams decode identically under the memoryview reader."""

    @staticmethod
    def _write_everything(writer):
        writer.write_bytes(b"hdr")
        writer.write_u8(0x7F)
        writer.write_u32(0xCAFEBABE)
        writer.write_i64(-(1 << 40))
        writer.write_f64(2.5)
        writer.write_varint(-(2**63))
        writer.write_varint(2**63 - 1)
        writer.write_uvarint(0)
        writer.write_uvarint(300)
        writer.write_len_bytes(b"")
        writer.write_len_bytes(b"payload")
        writer.write_str("")
        writer.write_str("unicode: é☃")

    def test_byte_identical_output(self):
        from repro.util.buffers import ChunkedBufferWriter

        new_writer = BufferWriter()
        old_writer = ChunkedBufferWriter()
        self._write_everything(new_writer)
        self._write_everything(old_writer)
        assert new_writer.getvalue() == old_writer.getvalue()

    def test_old_writer_stream_decodes_under_both_readers(self):
        from repro.util.buffers import ChunkedBufferWriter, SlicingBufferReader

        writer = ChunkedBufferWriter()
        self._write_everything(writer)
        payload = writer.getvalue()

        def read_all(reader):
            return (
                reader.read_bytes(3),
                reader.read_u8(),
                reader.read_u32(),
                reader.read_i64(),
                reader.read_f64(),
                reader.read_varint(),
                reader.read_varint(),
                reader.read_uvarint(),
                reader.read_uvarint(),
                reader.read_len_bytes(),
                reader.read_len_bytes(),
                reader.read_str(),
                reader.read_str(),
            )

        assert read_all(BufferReader(payload)) == read_all(
            SlicingBufferReader(payload)
        )


class TestBufferPool:
    def test_acquire_release_reuses_storage(self):
        from repro.util.buffers import BufferPool

        pool = BufferPool()
        buffer = pool.acquire()
        buffer += b"scribble"
        pool.release(buffer)
        again = pool.acquire()
        assert again is buffer
        assert len(again) == 0  # cleared on release

    def test_release_with_live_view_drops_buffer(self):
        from repro.util.buffers import BufferPool

        pool = BufferPool()
        buffer = pool.acquire()
        buffer += b"pinned"
        view = memoryview(buffer)
        pool.release(buffer)  # cannot clear while exported: dropped, no error
        assert pool.acquire() is not buffer
        view.release()

    def test_oversized_buffer_not_pooled(self):
        from repro.util.buffers import BufferPool

        pool = BufferPool(max_buffer_bytes=8)
        buffer = pool.acquire()
        buffer += b"0123456789"
        pool.release(buffer)
        assert pool.acquire() is not buffer


class TestSpillSink:
    """The external-view sink behind the shm zero-copy encode path."""

    def _drive(self, writer):
        """Every primitive the serde encode hot paths emit."""
        writer.write_u8(7)
        writer.write_u32(0xDEADBEEF)
        writer.write_i64(-12345678901234)
        writer.write_f64(2.5)
        writer.write_varint(-300)
        writer.write_uvarint(1 << 40)
        writer.write_len_bytes(b"payload-bytes")
        writer.write_str("café ☃")
        writer.write_bytes(b"x" * 100)

    def test_byte_identical_to_buffer_writer_in_place(self):
        from repro.util.buffers import SinkBufferWriter, SpillSink

        staged = BufferWriter()
        self._drive(staged)
        expected = staged.getvalue()

        backing = bytearray(len(expected) + 32)
        sink = SpillSink(memoryview(backing))
        writer = SinkBufferWriter(sink)
        self._drive(writer)
        assert sink.spill is None  # everything fit in the view
        assert sink.getvalue() == expected
        assert bytes(backing[: sink.in_place]) == expected

    def test_byte_identical_when_spilling_mid_write(self):
        from repro.util.buffers import SinkBufferWriter, SpillSink

        staged = BufferWriter()
        self._drive(staged)
        expected = staged.getvalue()

        # A tiny view forces the spill boundary to land inside a
        # multi-byte write; the logical stream must still be exact.
        for cap in (1, 5, 17, 64):
            backing = bytearray(cap)
            sink = SpillSink(memoryview(backing))
            writer = SinkBufferWriter(sink)
            self._drive(writer)
            assert sink.in_place == min(cap, len(expected))
            assert sink.spill is not None
            assert sink.getvalue() == expected
            assert (
                bytes(backing[: sink.in_place]) + bytes(sink.spill) == expected
            )

    def test_append_path_spills_after_view_fills(self):
        from repro.util.buffers import SpillSink

        backing = bytearray(2)
        sink = SpillSink(memoryview(backing))
        for value in (1, 2, 3, 4):
            sink.append(value)
        assert bytes(backing) == b"\x01\x02"
        assert bytes(sink.spill) == b"\x03\x04"
        assert len(sink) == 4

    def test_release_returns_spill_to_pool(self):
        from repro.util.buffers import BufferPool, SpillSink

        pool = BufferPool()
        backing = bytearray(4)
        sink = SpillSink(memoryview(backing), pool)
        sink += b"0123456789"  # 4 in place, 6 spilled via the pool
        spill = sink.spill
        assert spill is not None and len(pool) == 0
        sink.release()
        assert len(pool) == 1
        assert pool.acquire() is spill  # same storage, cleared

    def test_release_without_spill_is_clean(self):
        from repro.util.buffers import BufferPool, SpillSink

        pool = BufferPool()
        sink = SpillSink(memoryview(bytearray(16)), pool)
        sink += b"fits"
        sink.release()
        assert len(pool) == 0  # nothing acquired, nothing pooled

    def test_sink_writer_rejects_view_and_reset(self):
        from repro.util.buffers import SinkBufferWriter, SpillSink

        writer = SinkBufferWriter(SpillSink(memoryview(bytearray(8))))
        with pytest.raises(TypeError):
            writer.view()
        with pytest.raises(TypeError):
            writer.reset()
