"""Unit tests for restore-protocol internals: change detection, snapshots."""

import pytest

from repro.core.restore_protocol import (
    _decode_index,
    _encode_index,
    _shallow_state,
    _state_changed,
    _values_equal,
)
from repro.errors import RestoreError
from repro.serde.accessors import OPTIMIZED_ACCESSOR

from tests.model_helpers import Box, Node


class TestValuesEqual:
    def test_identity_wins(self):
        node = Node(1)
        assert _values_equal(node, node)

    def test_distinct_objects_unequal_even_if_same_content(self):
        assert not _values_equal(Node(1), Node(1))

    def test_primitives_by_value(self):
        assert _values_equal(5, 5)
        assert _values_equal("abc", "abc")
        assert _values_equal(b"x", b"x")
        assert not _values_equal(5, 6)

    def test_type_mismatch(self):
        assert not _values_equal(1, 1.0)
        assert not _values_equal("1", 1)

    def test_bool_vs_int_distinct(self):
        assert not _values_equal(True, 1)
        assert not _values_equal(0, False)


class TestShallowState:
    def test_object_state(self):
        node = Node(7)
        state = _shallow_state(node, OPTIMIZED_ACCESSOR)
        assert dict(state) == {"data": 7, "next": None}

    def test_list_state_is_shallow(self):
        inner = Node(1)
        state = _shallow_state([inner, 2], OPTIMIZED_ACCESSOR)
        assert state[0] is inner
        assert state[1] == 2

    def test_dict_state(self):
        state = _shallow_state({"k": "v"}, OPTIMIZED_ACCESSOR)
        assert state == (("k", "v"),)

    def test_set_state(self):
        assert set(_shallow_state({1, 2}, OPTIMIZED_ACCESSOR)) == {1, 2}

    def test_bytearray_state(self):
        assert _shallow_state(bytearray(b"ab"), OPTIMIZED_ACCESSOR) == (b"ab",)

    def test_unsupported_kind_raises(self):
        with pytest.raises(RestoreError):
            _shallow_state((1, 2), OPTIMIZED_ACCESSOR)  # tuples never snapshot


class TestStateChanged:
    def snap(self, obj):
        return _shallow_state(obj, OPTIMIZED_ACCESSOR)

    def test_no_change(self):
        node = Node(1)
        before = self.snap(node)
        assert not _state_changed(before, self.snap(node))

    def test_primitive_field_change(self):
        node = Node(1)
        before = self.snap(node)
        node.data = 2
        assert _state_changed(before, self.snap(node))

    def test_reference_field_change(self):
        node = Node(1)
        before = self.snap(node)
        node.next = Node(2)
        assert _state_changed(before, self.snap(node))

    def test_reference_identity_stable_means_unchanged(self):
        child = Node("c")
        node = Node(1, next=child)
        before = self.snap(node)
        child.data = "mutated-child"  # child changed, node did NOT
        assert not _state_changed(before, self.snap(node))

    def test_list_append_detected(self):
        items = [1]
        before = self.snap(items)
        items.append(2)
        assert _state_changed(before, self.snap(items))

    def test_list_item_replacement_detected(self):
        items = [Node(1)]
        before = self.snap(items)
        items[0] = Node(1)  # equal content, new identity
        assert _state_changed(before, self.snap(items))

    def test_dict_value_change_detected(self):
        mapping = {"k": 1}
        before = self.snap(mapping)
        mapping["k"] = 2
        assert _state_changed(before, self.snap(mapping))

    def test_dict_unchanged_pairs_ok(self):
        mapping = {"k": Node(1)}
        before = self.snap(mapping)
        assert not _state_changed(before, self.snap(mapping))

    def test_field_added(self):
        box = Box(1)
        before = self.snap(box)
        box.extra = True
        assert _state_changed(before, self.snap(box))


class TestIndexCoding:
    @pytest.mark.parametrize("index", [0, 1, 127, 128, 2**20])
    def test_roundtrip(self, index):
        assert _decode_index(_encode_index(index)) == index

    def test_trailing_bytes_rejected(self):
        from repro.errors import WireFormatError

        with pytest.raises(WireFormatError):
            _decode_index(_encode_index(1) + b"\x00")
