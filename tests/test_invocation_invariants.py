"""Protocol-level invariants the paper claims for the algorithm.

* One remote call = exactly one network round trip (no traffic during the
  remote routine's execution, no callbacks to resolve pointers).
* The linear-map-shipping ablation changes bytes, never semantics.
* Third-party references: stubs forward between endpoints unchanged.
* Metrics account what actually happened.
"""

import pytest

from repro.core.markers import Remote
from repro.nrmi.config import NRMIConfig
from repro.nrmi.runtime import Endpoint
from repro.transport.resolver import ChannelResolver

from tests.conftest import EndpointPair
from tests.model_helpers import Box, Node, heap_fingerprint


class DeepService(Remote):
    def churn(self, box):
        """Touches every node several times; must cause no extra traffic."""
        for _ in range(3):
            for node in box.payload:
                node.data += 1
        box.payload.append(Node(0))
        return len(box.payload)


class TestSingleRoundTrip:
    def test_copy_restore_call_is_one_round_trip(self, endpoint_pair):
        service = endpoint_pair.serve(DeepService())
        channel = endpoint_pair.client.channel_to(endpoint_pair.server.address)
        box = Box([Node(i) for i in range(50)])
        before = channel.stats.snapshot()["requests"]
        service.churn(box)
        after = channel.stats.snapshot()["requests"]
        assert after - before == 1  # the paper's "no traffic during execution"

    def test_no_reverse_traffic_during_execution(self, endpoint_pair):
        """The server never calls back to the client under copy-restore."""
        service = endpoint_pair.serve(DeepService())
        box = Box([Node(i) for i in range(20)])
        service.churn(box)
        reverse = endpoint_pair.server.channel_to(endpoint_pair.client.address)
        assert reverse.stats.snapshot()["requests"] == 0

    def test_restore_engine_ran(self, endpoint_pair):
        service = endpoint_pair.serve(DeepService())
        box = Box([Node(0)])
        service.churn(box)
        stats = endpoint_pair.client.last_restore_stats
        assert stats is not None
        assert stats.old_overwritten >= 2  # box.payload list + the node
        assert stats.new_adopted >= 1      # the appended node

    def test_metrics_counters(self, endpoint_pair):
        service = endpoint_pair.serve(DeepService())
        service.churn(Box([Node(0)]))
        snapshot = endpoint_pair.client.metrics.snapshot()
        assert snapshot["calls.outgoing"] >= 2  # lookup + churn
        assert snapshot["restore.old_overwritten"] >= 1


class TestShipLinearMapAblation:
    def _run(self, ship):
        config = NRMIConfig(ship_linear_map=ship)
        pair = EndpointPair(server_config=config, client_config=config)
        try:
            service = pair.serve(DeepService())
            box = Box([Node(i) for i in range(10)])
            result = service.churn(box)
            channel = pair.client.channel_to(pair.server.address)
            sent = channel.stats.snapshot()["bytes_sent"]
            return result, heap_fingerprint([box]), sent
        finally:
            pair.close()

    def test_semantics_identical(self):
        result_a, fp_a, _ = self._run(ship=False)
        result_b, fp_b, _ = self._run(ship=True)
        assert result_a == result_b
        assert fp_a == fp_b

    def test_shipping_costs_bytes(self):
        _, _, sent_reconstruct = self._run(ship=False)
        _, _, sent_shipped = self._run(ship=True)
        assert sent_shipped > sent_reconstruct

    def test_ship_map_with_plain_copy_args_is_noop(self):
        """No restorable args → nothing to ship even when enabled."""
        config = NRMIConfig(ship_linear_map=True, policy="none")
        pair = EndpointPair(server_config=config, client_config=config)
        try:

            class Plain(Remote):
                def poke(self, items):
                    return len(items)

            service = pair.serve(Plain(), name="plain")
            assert service.poke([1, 2, 3]) == 3
        finally:
            pair.close()


class TestThirdPartyReferences:
    def test_stub_forwarded_between_endpoints(self):
        """A stub minted at B travels through C and still points at B."""
        resolver = ChannelResolver()
        owner = Endpoint(name="owner", resolver=resolver)
        relay = Endpoint(name="relay", resolver=resolver)
        consumer = Endpoint(name="consumer", resolver=resolver)
        try:

            class Target(Remote):
                def whoami(self):
                    return "the-target"

            class Relay(Remote):
                def __init__(self):
                    self.kept = None

                def keep(self, stub):
                    self.kept = stub

                def fetch(self):
                    return self.kept

            owner.bind("target", Target())
            relay.bind("relay", Relay())

            target_stub = consumer.lookup(owner.address, "target")
            relay_stub = consumer.lookup(relay.address, "relay")
            relay_stub.keep(target_stub)         # consumer -> relay
            returned = relay_stub.fetch()        # relay -> consumer
            assert returned.descriptor.address == owner.address
            assert returned.whoami() == "the-target"
        finally:
            consumer.close()
            relay.close()
            owner.close()
            resolver.close_all()

    def test_registry_list_names_remotely(self, endpoint_pair):
        class A(Remote):
            pass

        endpoint_pair.server.bind("alpha", A())
        endpoint_pair.server.bind("beta", A())
        from repro.rmi.registry import REGISTRY_OBJECT_ID
        from repro.rmi.remote_ref import RemoteDescriptor, RemoteStub

        registry = RemoteStub(
            endpoint_pair.client,
            RemoteDescriptor(endpoint_pair.server.address, REGISTRY_OBJECT_ID),
        )
        assert registry.list_names() == ["alpha", "beta"]

    def test_rebind_visible_to_clients(self, endpoint_pair):
        class V1(Remote):
            def version(self):
                return 1

        class V2(Remote):
            def version(self):
                return 2

        endpoint_pair.server.bind("svc", V1())
        stub1 = endpoint_pair.client.lookup(endpoint_pair.server.address, "svc")
        assert stub1.version() == 1
        endpoint_pair.server.bind("svc", V2())  # bind() rebinds locally
        stub2 = endpoint_pair.client.lookup(endpoint_pair.server.address, "svc")
        assert stub2.version() == 2
        assert stub1.version() == 1  # old stub still pins the old object
