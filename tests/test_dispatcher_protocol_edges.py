"""Dispatcher and protocol corner cases: hostile and odd inputs."""

import pytest

from repro.rmi.protocol import (
    Op,
    Status,
    encode_batch,
    encode_ping,
    ok_response,
    policy_from_wire,
    policy_wire_id,
    split_response,
)
from repro.errors import WireFormatError
from repro.util.buffers import BufferReader, BufferWriter

from tests.model_helpers import Box


def raw_request(endpoint_pair, payload: bytes) -> bytes:
    return endpoint_pair.server.dispatcher.handle(payload)


class TestHostileFrames:
    def test_empty_request(self, endpoint_pair):
        status, _reader = split_response(raw_request(endpoint_pair, b""))
        assert status is Status.PROTOCOL_ERROR

    def test_unknown_op_byte(self, endpoint_pair):
        status, reader = split_response(raw_request(endpoint_pair, b"\x63"))
        assert status is Status.PROTOCOL_ERROR
        assert "unknown operation" in reader.read_str()

    def test_truncated_call(self, endpoint_pair):
        status, _reader = split_response(
            raw_request(endpoint_pair, bytes([Op.CALL, 0x80]))
        )
        assert status is Status.PROTOCOL_ERROR

    def test_garbage_args_payload(self, endpoint_pair):
        from repro.core.semantics import PassingMode
        from repro.rmi.protocol import CallRequest, encode_call

        request = encode_call(
            CallRequest(
                object_id=1,
                method="lookup",
                policy="none",
                profile="modern",
                modes=(PassingMode.BY_COPY,),
                args_payload=b"THIS IS NOT A STREAM",
            )
        )
        status, _reader = split_response(raw_request(endpoint_pair, request))
        assert status is Status.PROTOCOL_ERROR

    def test_call_to_unknown_object(self, endpoint_pair):
        from repro.rmi.protocol import CallRequest, encode_call
        from repro.serde.writer import ObjectWriter

        writer = ObjectWriter()
        request = encode_call(
            CallRequest(
                object_id=9999,
                method="anything",
                policy="none",
                profile="modern",
                modes=(),
                args_payload=writer.getvalue(),
            )
        )
        status, reader = split_response(raw_request(endpoint_pair, request))
        assert status is Status.EXCEPTION
        assert reader.read_str() == "NoSuchObjectError"

    def test_ping_direct(self, endpoint_pair):
        status, _reader = split_response(
            raw_request(endpoint_pair, encode_ping())
        )
        assert status is Status.OK

    def test_server_survives_hostile_burst(self, endpoint_pair):
        """A barrage of malformed frames must not wedge the dispatcher."""
        from repro.core.markers import Remote

        class Alive(Remote):
            def ok(self):
                return "still-here"

        service = endpoint_pair.serve(Alive())
        for garbage in (b"", b"\xff" * 64, bytes([Op.CALL]), b"\x01\x02\x03"):
            raw_request(endpoint_pair, garbage)
        assert service.ok() == "still-here"


class TestBatchProtocolEdges:
    def test_batch_of_pings(self, endpoint_pair):
        from repro.rmi.protocol import decode_batch_responses

        request = encode_batch([encode_ping(), encode_ping()])
        status, reader = split_response(raw_request(endpoint_pair, request))
        assert status is Status.OK
        subs = decode_batch_responses(reader)
        assert len(subs) == 2
        for sub in subs:
            sub_status, _r = split_response(sub)
            assert sub_status is Status.OK

    def test_batch_isolates_bad_sub_request(self, endpoint_pair):
        from repro.rmi.protocol import decode_batch_responses

        request = encode_batch([b"\x63garbage", encode_ping()])
        status, reader = split_response(raw_request(endpoint_pair, request))
        assert status is Status.OK
        first, second = decode_batch_responses(reader)
        assert split_response(first)[0] is Status.PROTOCOL_ERROR
        assert split_response(second)[0] is Status.OK

    def test_empty_batch(self, endpoint_pair):
        from repro.rmi.protocol import decode_batch_responses

        status, reader = split_response(
            raw_request(endpoint_pair, encode_batch([]))
        )
        assert status is Status.OK
        assert decode_batch_responses(reader) == []


class TestPolicyWireHelpers:
    @pytest.mark.parametrize("name", ["none", "full", "delta", "dce"])
    def test_roundtrip(self, name):
        assert policy_from_wire(policy_wire_id(name)) == name

    def test_unknown_name(self):
        with pytest.raises(WireFormatError):
            policy_wire_id("quantum")

    def test_unknown_id(self):
        with pytest.raises(WireFormatError):
            policy_from_wire(200)
