"""Failure injection: middleware must fail cleanly, restore atomically."""

import pytest

from repro.core.markers import Remote
from repro.errors import TransportError
from repro.nrmi.runtime import Endpoint
from repro.transport.fault import FaultInjectingChannel
from repro.transport.inproc import InProcChannel
from repro.transport.resolver import ChannelResolver

from tests.model_helpers import Box, Node


def echo(request: bytes) -> bytes:
    return request


class TestFaultChannel:
    def test_zero_rate_passes_through(self):
        channel = FaultInjectingChannel(InProcChannel(echo), failure_rate=0.0)
        assert channel.request(b"ok") == b"ok"
        assert channel.delivered == 1
        assert channel.injected_failures == 0

    def test_full_rate_always_fails(self):
        channel = FaultInjectingChannel(InProcChannel(echo), failure_rate=1.0)
        with pytest.raises(TransportError, match="request dropped"):
            channel.request(b"x")
        assert channel.injected_failures == 1

    def test_drop_response_still_delivers_request(self):
        hits = []

        def counting(request: bytes) -> bytes:
            hits.append(request)
            return request

        channel = FaultInjectingChannel(
            InProcChannel(counting), failure_rate=1.0, mode="drop_response"
        )
        with pytest.raises(TransportError, match="response dropped"):
            channel.request(b"went-through")
        assert hits == [b"went-through"]  # at-most-once hazard made visible

    def test_disconnect_is_sticky_until_heal(self):
        channel = FaultInjectingChannel(
            InProcChannel(echo), failure_rate=0.0, mode="disconnect"
        )
        channel.fail_next()
        with pytest.raises(TransportError):
            channel.request(b"a")
        with pytest.raises(TransportError):
            channel.request(b"b")  # still down
        channel.heal()
        assert channel.request(b"c") == b"c"

    def test_seeded_rate_deterministic(self):
        def run():
            channel = FaultInjectingChannel(
                InProcChannel(echo), failure_rate=0.5, seed=7
            )
            outcomes = []
            for i in range(30):
                try:
                    channel.request(b"x")
                    outcomes.append(True)
                except TransportError:
                    outcomes.append(False)
            return outcomes

        assert run() == run()
        assert True in run() and False in run()

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            FaultInjectingChannel(InProcChannel(echo), mode="explode")


class FlipService(Remote):
    def flip(self, box):
        box.payload = -box.payload
        return box.payload


class TestMiddlewareUnderFaults:
    def _pair_with_faults(self, mode):
        resolver = ChannelResolver()
        server = Endpoint(name="fault-server", resolver=resolver)
        client = Endpoint(name="fault-client", resolver=resolver)
        faulty = {}

        def wrap(inner):
            channel = FaultInjectingChannel(inner, failure_rate=0.0, mode=mode)
            faulty["channel"] = channel
            return channel

        resolver.set_wrapper(server.address, wrap)
        server.bind("flip", FlipService())
        service = client.lookup(server.address, "flip")
        return resolver, server, client, service, faulty

    def test_dropped_request_leaves_heap_untouched(self):
        resolver, server, client, service, faulty = self._pair_with_faults(
            "drop_request"
        )
        try:
            box = Box(5)
            faulty["channel"].fail_next()
            with pytest.raises(TransportError):
                service.flip(box)
            assert box.payload == 5  # no partial restore
            assert service.flip(box) == -5  # channel still usable
        finally:
            client.close()
            server.close()
            resolver.close_all()

    def test_dropped_response_leaves_heap_untouched(self):
        """The server-side copy mutated, but without a reply the caller's
        originals must be pristine — restore is reply-driven."""
        resolver, server, client, service, faulty = self._pair_with_faults(
            "drop_response"
        )
        try:
            box = Box(5)
            faulty["channel"].fail_next()
            with pytest.raises(TransportError):
                service.flip(box)
            assert box.payload == 5
        finally:
            client.close()
            server.close()
            resolver.close_all()

    def test_disconnect_then_heal_recovers(self):
        resolver, server, client, service, faulty = self._pair_with_faults(
            "disconnect"
        )
        try:
            faulty["channel"].fail_next()
            with pytest.raises(TransportError):
                service.flip(Box(1))
            faulty["channel"].heal()
            assert service.flip(Box(2)) == -2
        finally:
            client.close()
            server.close()
            resolver.close_all()
