"""Endpoints with differing configurations must interoperate.

The CALL request carries the caller's profile; the server decodes and
responds in that profile regardless of its own default — so a legacy
(JDK 1.3-like) client talks to a modern (JDK 1.4-like) server and back.
"""

import pytest

from repro.core.markers import Remote
from repro.nrmi.config import NRMIConfig

from tests.model_helpers import Box, Node


class Mixer(Remote):
    def mutate(self, box):
        box.payload.append(Node("added"))
        return len(box.payload)


CONFIG_MATRIX = [
    (NRMIConfig(profile="legacy", implementation="portable"), NRMIConfig()),
    (NRMIConfig(), NRMIConfig(profile="legacy", implementation="portable")),
    (
        NRMIConfig(profile="legacy", implementation="portable", policy="delta"),
        NRMIConfig(policy="full"),
    ),
]


class TestMixedProfiles:
    @pytest.mark.parametrize("client_config,server_config", CONFIG_MATRIX)
    def test_cross_profile_call_restores(
        self, make_endpoint_pair, client_config, server_config
    ):
        pair = make_endpoint_pair(
            server_config=server_config, client_config=client_config
        )
        service = pair.serve(Mixer())
        box = Box([Node("original")])
        count = service.mutate(box)
        assert count == 2
        assert box.payload[1].data == "added"
        assert box.payload[0].data == "original"

    def test_client_policy_governs(self, make_endpoint_pair):
        """The restore policy rides the request: a 'none' client gets RMI
        semantics even from a 'full' server."""
        pair = make_endpoint_pair(
            server_config=NRMIConfig(policy="full"),
            client_config=NRMIConfig(policy="none"),
        )
        service = pair.serve(Mixer())
        box = Box([])
        service.mutate(box)
        assert box.payload == []  # caller asked for call-by-copy

    def test_delta_client_full_server_default(self, make_endpoint_pair):
        pair = make_endpoint_pair(
            server_config=NRMIConfig(policy="full"),
            client_config=NRMIConfig(policy="delta"),
        )
        service = pair.serve(Mixer())
        box = Box([])
        service.mutate(box)
        assert len(box.payload) == 1  # delta restored the append


class TestRegistryRemoteAdmin:
    def test_unbind_via_stub(self, endpoint_pair):
        class Svc(Remote):
            def ok(self):
                return True

        endpoint_pair.server.bind("temp", Svc())
        from repro.rmi.registry import REGISTRY_OBJECT_ID
        from repro.rmi.remote_ref import RemoteDescriptor, RemoteStub

        registry = RemoteStub(
            endpoint_pair.client,
            RemoteDescriptor(endpoint_pair.server.address, REGISTRY_OBJECT_ID),
        )
        assert "temp" in registry.list_names()
        registry.unbind("temp")
        assert "temp" not in registry.list_names()

    def test_bind_remotely_stores_stub(self, endpoint_pair):
        """A client binding its own service into the server's registry."""

        class ClientService(Remote):
            def whoami(self):
                return "client-side"

        from repro.rmi.registry import REGISTRY_OBJECT_ID
        from repro.rmi.remote_ref import RemoteDescriptor, RemoteStub

        registry = RemoteStub(
            endpoint_pair.client,
            RemoteDescriptor(endpoint_pair.server.address, REGISTRY_OBJECT_ID),
        )
        registry.bind("from-client", ClientService())
        # A third party looks it up at the server and calls THROUGH to the
        # client-owned object.
        fetched = endpoint_pair.client.lookup(
            endpoint_pair.server.address, "from-client"
        )
        assert fetched.whoami() == "client-side"
