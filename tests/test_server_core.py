"""The staged server core: bounded queue, shedding, drain, reaping.

These tests drive :class:`repro.transport.netloop.StagedStreamServer`
through its TCP/UDS bindings with plain ``bytes -> bytes`` handlers and
raw sockets, below the RMI stack — the chaos matrix covers the same
behaviours end-to-end through proxies and retries.
"""

import socket
import struct
import threading
import time

import pytest

from repro.errors import RetryableError, ServerBusyError, TransportError
from repro.rmi.protocol import Status, busy_response, raise_if_busy
from repro.transport.framing import read_frame, write_frame
from repro.transport.netloop import StagedStreamServer
from repro.transport.tcp import TcpChannel, TcpServer, ThreadedTcpServer
from repro.util.metrics import MetricsRegistry

_LEN = struct.Struct(">I")

BUSY_QUEUE_FULL = bytes(busy_response(ServerBusyError.QUEUE_FULL))
BUSY_DRAINING = bytes(busy_response(ServerBusyError.DRAINING))


def echo(request):
    return bytes(request)


class GatedHandler:
    """Blocks every request until released; counts executions."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.executions = 0
        self._lock = threading.Lock()

    def __call__(self, request):
        self.started.set()
        self.release.wait(10.0)
        with self._lock:
            self.executions += 1
        return bytes(request)


def dial(server, timeout=5.0):
    sock = socket.create_connection((server.host, server.port), timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


class TestBusyShedding:
    def test_constructor_validates_options(self):
        with pytest.raises(ValueError):
            TcpServer(echo, workers=0)
        with pytest.raises(ValueError):
            TcpServer(echo, queue_capacity=0)
        with pytest.raises(ValueError):
            TcpServer(echo, max_inflight_per_conn=0)
        with pytest.raises(ValueError):
            TcpServer(echo, overload_policy="panic")

    def test_queue_full_answers_busy_frame_immediately(self):
        """workers=1, queue=1, handler gated shut: the 3rd request meets
        a full queue and gets the 2-byte BUSY frame at once."""
        handler = GatedHandler()
        metrics = MetricsRegistry()
        with TcpServer(
            handler, workers=1, queue_capacity=1, metrics=metrics
        ) as server:
            occupier = dial(server)  # fills the worker
            write_frame(occupier, b"a")
            assert handler.started.wait(5.0)
            queued = dial(server)  # fills the queue
            write_frame(queued, b"b")
            deadline = time.monotonic() + 5.0
            while (
                metrics.gauge("server.queue_depth").value < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)

            shed = dial(server)
            started = time.monotonic()
            write_frame(shed, b"c")
            response = bytes(read_frame(shed, timeout=5.0))
            elapsed = time.monotonic() - started

            assert response == BUSY_QUEUE_FULL
            assert response[0] == int(Status.BUSY)
            assert elapsed < 1.0  # shed without waiting for the worker
            assert metrics.counter("server.shed.queue_full").value >= 1

            handler.release.set()
            assert bytes(read_frame(occupier, timeout=5.0)) == b"a"
            assert bytes(read_frame(queued, timeout=5.0)) == b"b"
            assert handler.executions == 2  # the shed request never ran
            for sock in (occupier, queued, shed):
                sock.close()

    def test_channel_surfaces_busy_as_retryable_error(self):
        handler = GatedHandler()
        with TcpServer(handler, workers=1, queue_capacity=1) as server:
            occupier = dial(server)
            write_frame(occupier, b"a")
            assert handler.started.wait(5.0)
            queued = dial(server)
            write_frame(queued, b"b")
            time.sleep(0.05)

            channel = TcpChannel(server.host, server.port, timeout=5.0)
            raw = channel.request(b"c")
            with pytest.raises(ServerBusyError) as excinfo:
                raise_if_busy(raw)
            assert isinstance(excinfo.value, RetryableError)
            assert excinfo.value.reason == ServerBusyError.QUEUE_FULL
            handler.release.set()
            channel.close()
            occupier.close()
            queued.close()

    def test_block_policy_backpressures_instead_of_shedding(self):
        """overload_policy="block" parks the frame and pauses reads; once
        the worker frees up everything completes, nothing is shed."""
        handler = GatedHandler()
        metrics = MetricsRegistry()
        with TcpServer(
            handler,
            workers=1,
            queue_capacity=1,
            overload_policy="block",
            metrics=metrics,
        ) as server:
            socks = [dial(server) for _ in range(3)]
            for index, sock in enumerate(socks):
                write_frame(sock, bytes([index]))
            assert handler.started.wait(5.0)
            handler.release.set()
            for index, sock in enumerate(socks):
                assert bytes(read_frame(sock, timeout=5.0)) == bytes([index])
            assert metrics.counter("server.shed.queue_full").value == 0
            assert handler.executions == 3
            for sock in socks:
                sock.close()


class TestDrain:
    def test_stop_answers_backlog_with_busy_draining(self):
        """Frames parsed but not yet submitted when drain starts are
        answered with BUSY(DRAINING), not silently dropped."""
        handler = GatedHandler()
        metrics = MetricsRegistry()
        server = TcpServer(
            handler,
            workers=1,
            queue_capacity=1,
            metrics=metrics,
        )
        occupier = dial(server)
        write_frame(occupier, b"a")
        assert handler.started.wait(5.0)
        queued = dial(server)
        write_frame(queued, b"b")
        deadline = time.monotonic() + 5.0
        while (
            metrics.gauge("server.queue_depth").value < 1
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        # A plain connection executes one frame at a time, so the second
        # frame on the occupier's connection sits in its backlog.
        write_frame(occupier, b"backlogged")

        stopper = threading.Thread(target=server.stop, args=(5.0,))
        time.sleep(0.05)  # let the backlog frame reach the net loop
        stopper.start()
        time.sleep(0.1)
        handler.release.set()
        stopper.join(timeout=10.0)

        assert bytes(read_frame(occupier, timeout=5.0)) == b"a"
        assert bytes(read_frame(occupier, timeout=5.0)) == BUSY_DRAINING
        assert bytes(read_frame(queued, timeout=5.0)) == b"b"
        assert metrics.counter("server.drain.graceful").value == 1
        assert metrics.counter("server.shed.draining").value >= 1
        occupier.close()
        queued.close()

    def test_grace_expiry_forces_and_rejects_queued_work(self):
        """A handler that never finishes: stop(grace) must still return,
        count a forced drain, and BUSY the queued-but-unstarted job."""
        handler = GatedHandler()
        metrics = MetricsRegistry()
        server = TcpServer(
            handler, workers=1, queue_capacity=4, metrics=metrics
        )
        occupier = dial(server)
        write_frame(occupier, b"a")
        assert handler.started.wait(5.0)
        queued = dial(server)
        write_frame(queued, b"b")
        time.sleep(0.05)

        started = time.monotonic()
        server.stop(grace=0.2)
        assert time.monotonic() - started < 5.0
        assert metrics.counter("server.drain.forced").value == 1
        assert metrics.counter("server.drain.rejected").value >= 1
        assert bytes(read_frame(queued, timeout=5.0)) == BUSY_DRAINING
        handler.release.set()
        occupier.close()
        queued.close()

    def test_stop_is_idempotent(self):
        server = TcpServer(echo, workers=1)
        server.stop(grace=1.0)
        server.stop(grace=1.0)  # second call returns without error

    def test_new_connections_refused_after_stop(self):
        server = TcpServer(echo, workers=1)
        host, port = server.host, server.port
        server.stop(grace=1.0)
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=1.0)

    def test_uds_socket_unlinked_only_after_listener_closed(self):
        import os

        from repro.transport.uds import UdsServer

        if not hasattr(socket, "AF_UNIX"):
            pytest.skip("platform lacks AF_UNIX")
        server = UdsServer(echo, workers=1)
        path = server.path
        assert os.path.exists(path)
        server.stop(grace=1.0)
        assert not os.path.exists(path)
        # A successor can immediately reclaim the path.
        successor = UdsServer(echo, path=path, workers=1)
        assert os.path.exists(path)
        successor.stop(grace=1.0)
        assert not os.path.exists(path)


class TestSlowLoris:
    def test_partial_frame_reaped_after_deadline(self):
        metrics = MetricsRegistry()
        with TcpServer(
            echo, workers=1, partial_read_timeout=0.2, metrics=metrics
        ) as server:
            healthy = dial(server)
            write_frame(healthy, b"ok")
            assert bytes(read_frame(healthy, timeout=5.0)) == b"ok"

            loris = dial(server)
            loris.sendall(_LEN.pack(1000)[:3])  # 3 bytes of a 4-byte header
            deadline = time.monotonic() + 5.0
            while (
                metrics.counter("server.connections.reaped_stalled").value < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert (
                metrics.counter("server.connections.reaped_stalled").value
                == 1
            )
            # The healthy connection (no partial frame) is untouched.
            write_frame(healthy, b"still-ok")
            assert bytes(read_frame(healthy, timeout=5.0)) == b"still-ok"
            healthy.close()
            loris.close()

    def test_fault_channel_stall_mode_leaves_pool_clean(self):
        from repro.transport.fault import FaultInjectingChannel

        with TcpServer(echo, workers=1) as server:
            channel = TcpChannel(server.host, server.port, timeout=5.0)
            fault = FaultInjectingChannel(
                channel, mode="stall", fail_on_calls={1}, stall_after_bytes=6
            )
            with pytest.raises(RetryableError):
                fault.request(b"stalled-call")
            assert fault.stalled_connections == 1
            # The pooled connection was never poisoned: the retry works.
            assert fault.request(b"retried-call") == b"retried-call"
            fault.release_stalled()
            assert fault.stalled_connections == 0
            fault.close()


class TestContract:
    def test_live_connections_tracks_peers(self):
        with TcpServer(echo, workers=1) as server:
            assert server.live_connections == 0
            sock = dial(server)
            write_frame(sock, b"x")
            assert bytes(read_frame(sock, timeout=5.0)) == b"x"
            assert server.live_connections == 1
            sock.close()
            deadline = time.monotonic() + 5.0
            while server.live_connections and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.live_connections == 0

    def test_handler_exception_drops_connection_only(self):
        def bad(request):
            raise RuntimeError("protocol bug")

        with TcpServer(bad, workers=1) as server:
            sock = dial(server)
            write_frame(sock, b"x")
            with pytest.raises(TransportError):
                read_frame(sock, timeout=5.0)
            sock.close()
            # The server survives and serves the next connection... with
            # the same failing handler the accept machinery still works.
            replacement = dial(server)
            write_frame(replacement, b"y")
            with pytest.raises(TransportError):
                read_frame(replacement, timeout=5.0)
            replacement.close()

    def test_threaded_baseline_still_serves(self):
        with ThreadedTcpServer(echo) as server:
            sock = dial(server)
            write_frame(sock, b"legacy")
            assert bytes(read_frame(sock, timeout=5.0)) == b"legacy"
            sock.close()

    def test_staged_server_requires_subclass_address(self):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind(("127.0.0.1", 0))
        sock.listen(1)
        server = StagedStreamServer(echo, sock, label="raw", workers=1)
        try:
            with pytest.raises(NotImplementedError):
                _ = server.address
        finally:
            server.stop(grace=1.0)


@pytest.mark.soak
class TestSaturationSoak:
    def test_bounded_queue_under_sustained_overload(self):
        """Short saturation soak: hammer workers=2/queue=2 from 8
        threads for ~1.5s. The queue depth stays within its bound the
        whole time (bounded memory), BUSY replies are immediate, and
        every admitted request is answered exactly once."""

        def slowish(request):
            time.sleep(0.002)
            return bytes(request)

        metrics = MetricsRegistry()
        capacity = 2
        with TcpServer(
            slowish,
            workers=2,
            queue_capacity=capacity,
            metrics=metrics,
        ) as server:
            stop = threading.Event()
            depth_violations = []
            outcomes = {"ok": 0, "busy": 0}
            lock = threading.Lock()

            def sample_depth():
                gauge = metrics.gauge("server.queue_depth")
                while not stop.is_set():
                    if gauge.value > capacity:
                        depth_violations.append(gauge.value)
                    time.sleep(0.001)

            def hammer(seed):
                sock = dial(server)
                ok = busy = 0
                try:
                    while not stop.is_set():
                        payload = bytes([seed]) * (1 + seed)
                        write_frame(sock, payload)
                        response = bytes(read_frame(sock, timeout=10.0))
                        if response == BUSY_QUEUE_FULL:
                            busy += 1
                        else:
                            assert response == payload
                            ok += 1
                finally:
                    sock.close()
                    with lock:
                        outcomes["ok"] += ok
                        outcomes["busy"] += busy

            sampler = threading.Thread(target=sample_depth)
            sampler.start()
            threads = [
                threading.Thread(target=hammer, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            time.sleep(1.5)
            stop.set()
            for thread in threads:
                thread.join(timeout=15.0)
            sampler.join(timeout=5.0)

            assert not depth_violations  # bounded memory: depth <= capacity
            assert outcomes["ok"] > 0
            assert outcomes["busy"] > 0  # overload actually shed
            submitted = metrics.counter("server.jobs.submitted").value
            completed = metrics.counter("server.jobs.completed").value
            assert completed == submitted  # every admitted job answered
            shed = metrics.counter("server.shed.queue_full").value
            assert shed == outcomes["busy"]  # sheds and BUSYs reconcile
