"""Aliasing semantics through the full stack: the paper's hard cases."""

import pytest

from repro.core.markers import Remote
from repro.nrmi.config import NRMIConfig

from tests.model_helpers import Box, Node


class GraphService(Remote):
    def relink(self, box_a, box_b):
        """Cross-link the payloads of two restorable parameters."""
        box_a.payload, box_b.payload = box_b.payload, box_a.payload

    def mark_both(self, box_a, box_b, value):
        box_a.payload.data = value
        box_b.payload.data = value + "-b"

    def count_distinct(self, box_a, box_b):
        return 1 if box_a.payload is box_b.payload else 2

    def detach_and_mutate(self, box):
        orphan = box.payload
        box.payload = None
        orphan.data = "still-updated"

    def build_cycle(self, box):
        first = Node("one")
        second = Node("two", next=first)
        first.next = second
        box.payload = first


class TestSharedStructureAcrossParameters:
    def test_shared_object_not_duplicated(self, endpoint_pair):
        """Section 4.1: sharing must be detected, not copied twice."""
        service = endpoint_pair.serve(GraphService())
        shared = Node("shared")
        assert service.count_distinct(Box(shared), Box(shared)) == 1

    def test_distinct_objects_stay_distinct(self, endpoint_pair):
        service = endpoint_pair.serve(GraphService())
        assert service.count_distinct(Box(Node("a")), Box(Node("b"))) == 2

    def test_same_parameter_twice(self, endpoint_pair):
        service = endpoint_pair.serve(GraphService())
        box = Box(Node("self"))
        assert service.count_distinct(box, box) == 1

    def test_cross_param_relink_restored(self, endpoint_pair):
        service = endpoint_pair.serve(GraphService())
        node_a, node_b = Node("a"), Node("b")
        box_a, box_b = Box(node_a), Box(node_b)
        service.relink(box_a, box_b)
        assert box_a.payload is node_b  # identities crossed over, in place
        assert box_b.payload is node_a

    def test_mutation_via_two_routes_consistent(self, endpoint_pair):
        service = endpoint_pair.serve(GraphService())
        shared = Node("x")
        box_a, box_b = Box(shared), Box(shared)
        service.mark_both(box_a, box_b, "val")
        # Both writes hit ONE object on the server; last write wins and is
        # restored onto the one original.
        assert shared.data == "val-b"
        assert box_a.payload is shared and box_b.payload is shared


class TestDetachedAliases:
    def test_detached_object_still_restored(self, endpoint_pair):
        """The alias1/alias2 guarantee on a real remote call."""
        service = endpoint_pair.serve(GraphService())
        kept = Node("original")
        box = Box(kept)
        service.detach_and_mutate(box)
        assert box.payload is None
        assert kept.data == "still-updated"  # restored though unreachable

    def test_server_built_cycle_restored(self, endpoint_pair):
        service = endpoint_pair.serve(GraphService())
        box = Box(None)
        service.build_cycle(box)
        first = box.payload
        assert first.data == "one"
        assert first.next.data == "two"
        assert first.next.next is first


class TestDeepStructures:
    def test_deep_linked_list_restores(self, endpoint_pair):
        """Depth beyond the recursion limit through the whole stack."""

        class DeepService(Remote):
            def bump_all(self, head):
                node = head
                while node is not None:
                    node.data += 1
                    node = node.next

        service = endpoint_pair.serve(DeepService())
        head = Node(0)
        current = head
        for i in range(5000):
            current.next = Node(i + 1)
            current = current.next
        service.bump_all(head)
        node, expected = head, 1
        while node is not None:
            assert node.data == expected
            expected += 1
            node = node.next

    def test_wide_structure(self, endpoint_pair):
        class WideService(Remote):
            def sum_and_clear(self, box):
                total = sum(n.data for n in box.payload)
                box.payload = []
                return total

        service = endpoint_pair.serve(WideService())
        nodes = [Node(i) for i in range(2000)]
        box = Box(list(nodes))
        assert service.sum_and_clear(box) == sum(range(2000))
        assert box.payload == []
        assert nodes[7].data == 7  # originals intact


class TestContainerRoots:
    def test_dict_inside_restorable(self, endpoint_pair):
        class DictService(Remote):
            def index(self, box):
                box.payload["by_data"] = {n.data: n for n in box.payload["nodes"]}

        service = endpoint_pair.serve(DictService())
        nodes = [Node("a"), Node("b")]
        box = Box({"nodes": nodes})
        service.index(box)
        assert box.payload["by_data"]["a"] is nodes[0]
        assert box.payload["by_data"]["b"] is nodes[1]

    def test_set_membership_updated(self, endpoint_pair):
        class SetService(Remote):
            def add_tag(self, box, tag):
                box.payload["tags"].add(tag)

        service = endpoint_pair.serve(SetService())
        tags = {"alpha"}
        box = Box({"tags": tags})
        service.add_tag(box, "beta")
        assert tags == {"alpha", "beta"}

    def test_tuple_field_rebuilt(self, endpoint_pair):
        class TupleService(Remote):
            def wrap(self, box):
                box.payload = (box.payload, "wrapped")

        service = endpoint_pair.serve(TupleService())
        inner = Node("inner")
        box = Box(inner)
        service.wrap(box)
        assert box.payload[0] is inner  # rebuilt tuple points at original
        assert box.payload[1] == "wrapped"
