"""CI bench-smoke step: the benchmark-regression runner stays healthy.

Layers:

* run ``repro.bench.regress --quick`` end to end (into a temp file, so the
  committed full-size ``BENCH_pr6.json`` at the repo root is not clobbered
  by quick-mode numbers) and validate the report it writes — including
  that codegen actually engaged under the modern profile and beat the
  interpreted-plan baseline measured in the same run;
* re-measure the full-size serde micro encode AND decode in-process and
  hold both to the recorded ``BENCH_pr6.json`` within the runner's
  regression budget;
* hold the plan-driven decode fast path to its defining property: modern
  decode stays within 1.5x of modern encode;
* replay scenario III with a 1%-mutation mutator so the sparse
  dirty-slot reply path is regression-gated alongside the dense one.
"""

import json
from pathlib import Path

import pytest

from repro.bench import regress

REPO_ROOT = Path(__file__).resolve().parents[1]

# In-suite re-measures run short windows: enough samples for a stable
# p50, without stretching the smoke step.
SMOKE_WINDOWS = 2
SMOKE_WINDOW_SECONDS = 0.2


@pytest.mark.bench_smoke
def test_regress_quick_runs_clean(tmp_path):
    output = tmp_path / "bench_smoke.json"
    rc = regress.main(["--quick", "--output", str(output)])
    assert rc == 0
    report = json.loads(output.read_text())
    assert report["meta"]["quick"] is True
    assert report["meta"]["size"] == regress.QUICK_SIZE
    assert report["meta"]["git_rev"]  # stamped, "unknown" at worst
    for profile in ("modern", "modern-interp", "legacy"):
        row = report["serde_micro"][profile]
        assert row["encode_us"] > 0
        assert row["decode_us"] > 0
        assert row["encode_us"] <= row["encode_p90_us"] <= row["encode_p99_us"]
        assert row["decode_us"] <= row["decode_p90_us"] <= row["decode_p99_us"]
        assert row["window_samples"] > 0
        assert row["bytes"] > 0
    # The profile gap must keep the paper's shape: legacy does strictly
    # more work and writes strictly more bytes.
    assert (
        report["serde_micro"]["modern"]["bytes"]
        < report["serde_micro"]["legacy"]["bytes"]
    )
    # Codegen must actually be engaged under the modern profile ...
    assert report["codegen"]["compiled"] > 0
    # ... and pay for itself against the interpreted plans in the same
    # run (dedicated full runs show ~1.5x; even quick windows clear 1.1x).
    modern = report["serde_micro"]["modern"]
    interp = report["serde_micro"]["modern-interp"]
    assert modern["encode_us"] < interp["encode_us"]
    assert modern["decode_us"] < interp["decode_us"]
    # The transport round-trip section is present with sane timings.
    assert report["transport_rt"]["tcp"]["rt_us"] > 0
    for scheme in ("uds", "shm"):
        row = report["transport_rt"][scheme]
        assert row.get("skipped") or row["rt_us"] > 0
    # The transport × payload × framing matrix: every cell the platform
    # can measure carries ordered percentiles and a sample count.
    matrix = report["transport_matrix"]
    assert matrix["meta"]["payload_bytes"] == list(
        regress._MATRIX_PAYLOADS_QUICK
    )
    for scheme in regress._MATRIX_SCHEMES:
        scheme_rows = matrix[scheme]
        if "skipped" in scheme_rows:
            continue
        assert set(scheme_rows) == set(regress._MATRIX_MODES)
        for mode_rows in scheme_rows.values():
            assert set(mode_rows) == {
                f"{size}B" for size in regress._MATRIX_PAYLOADS_QUICK
            }
            for cell in mode_rows.values():
                assert cell["rt_us"] > 0
                assert cell["rt_us"] <= cell["rt_p90_us"] <= cell["rt_p99_us"]
                assert cell["window_samples"] > 0
    assert report["gate"]["passed"] is True
    # The delta ablation must be present and keep its defining shape: a
    # sparse mutator's dirty-slot reply is smaller than the full map.
    sparse = report["delta_restore"]["sparse"]
    assert sparse["delta"]["reply_bytes"] < sparse["full"]["reply_bytes"]


# The recorded numbers come from a quiet dedicated run; re-measuring in
# the middle of a loaded pytest run needs headroom beyond the runner's
# 25% gate. 75% still catches every structural regression this test
# exists for (losing the compiled-plan fast path alone is ~8x).
IN_SUITE_LIMIT_PCT = 75.0


@pytest.mark.bench_smoke
def test_serde_micro_timings_within_recorded_budget():
    recorded = regress._load_previous(REPO_ROOT / "BENCH_pr6.json")
    failures = []
    for _ in range(2):  # one re-measure before failing, for noise spikes
        serde = regress.run_serde_micro(
            regress.FULL_SIZE, SMOKE_WINDOWS, SMOKE_WINDOW_SECONDS
        )
        failures = regress._check_gate(
            recorded, serde, regress.FULL_SIZE, limit_pct=IN_SUITE_LIMIT_PCT
        )
        if not failures:
            break
    assert not failures, "; ".join(failures)


@pytest.mark.bench_smoke
def test_modern_decode_fast_path_within_encode_budget():
    """Modern decode must stay within 1.5x of modern encode (full size).

    Before the plan-driven decode fast path, decode ran ~3.5x slower than
    encode on the scenario III micro (the per-object frame machine); the
    direct subtree loop brought it under encode. A decode/encode ratio
    above 1.5 means the fast path stopped engaging (e.g. plans no longer
    report dict-safe stores) — a structural regression, not noise, since
    both sides of the ratio are measured in the same process.
    """
    for _ in range(2):  # one re-measure before failing, for noise spikes
        serde = regress.run_serde_micro(
            regress.FULL_SIZE, SMOKE_WINDOWS, SMOKE_WINDOW_SECONDS
        )
        modern = serde["modern"]
        if modern["decode_us"] <= 1.5 * modern["encode_us"]:
            break
    assert modern["decode_us"] <= 1.5 * modern["encode_us"], modern


@pytest.mark.bench_smoke
def test_sparse_one_percent_mutator_delta_gate():
    """Scenario III, 1% mutation: dirty-slot replies must stay sparse.

    Gates the sparse reply path the way the encode gate protects serde:
    if digesting or the oldref encoding regresses into shipping clean
    slots, the ratio collapses well below the floor asserted here.
    """
    result = regress.run_delta_restore(
        regress.QUICK_SIZE, rounds=2, iterations=3, mutations={"one_pct": 0.01}
    )
    row = result["one_pct"]
    assert row["mutate_fraction"] == 0.01
    # At 1% mutation of a 64-node tree a reply carries ~0-2 dirty slots;
    # anything under 4x means clean slots are leaking into the reply.
    assert row["reply_bytes_ratio"] >= 4.0, row
    assert row["delta"]["reply_bytes"] < row["full"]["reply_bytes"] / 4.0


@pytest.mark.bench_smoke
def test_recorded_shm_beats_uds_on_co_located_round_trips():
    """The committed full run must record the shm transport winning.

    This is the PR's headline claim — removing the socket layer from
    co-located round trips — gated on the recorded report rather than a
    live re-measure, which under full-suite load would gate on scheduler
    noise instead of the transport.
    """
    report = regress._load_previous(REPO_ROOT / "BENCH_pr8.json")
    assert report is not None, "BENCH_pr8.json missing at the repo root"
    # The gated claim is the echo workload's smallest plain cell: the
    # regime where transport cost dominates marshalling.
    matrix = report["transport_matrix"]
    assert matrix["shm_vs_uds_speedup_64B"] >= 1.0
    shm_cell = matrix["shm"]["plain"]["64B"]
    uds_cell = matrix["uds"]["plain"]["64B"]
    assert shm_cell["rt_us"] <= uds_cell["rt_us"]
    # The recorded PING row carries the same ordering (the report is
    # static, so this is a check on the committed artifact, not a
    # re-measure that could gate on scheduler noise).
    rt = report["transport_rt"]
    assert rt["shm"]["rt_us"] <= rt["uds"]["rt_us"]
    assert rt["shm_vs_uds_speedup"] >= 1.0


@pytest.mark.bench_smoke
def test_compare_mode_reports_deltas(tmp_path, capsys):
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    meta = {"size": regress.QUICK_SIZE}
    old.write_text(json.dumps({
        "meta": meta,
        "serde_micro": {"modern": {"encode_us": 100.0, "bytes": 500}},
    }))
    new.write_text(json.dumps({
        "meta": meta,
        "serde_micro": {"modern": {"encode_us": 110.0, "bytes": 500}},
    }))
    assert regress.run_compare(old, new) == 0
    out = capsys.readouterr().out
    assert "serde_micro.modern.encode_us" in out
    assert "+10.0%" in out

    # Beyond the gate: time-like metrics regress the exit status, and the
    # exit message names each failing metric ...
    new.write_text(json.dumps({
        "meta": meta,
        "serde_micro": {"modern": {"encode_us": 200.0, "bytes": 500}},
    }))
    assert regress.run_compare(old, new) == 1
    err = capsys.readouterr().err
    assert "compare failed: 1 metric(s) regressed" in err
    assert "serde_micro.modern.encode_us" in err
    # ... but byte counts are informational only.
    new.write_text(json.dumps({
        "meta": meta,
        "serde_micro": {"modern": {"encode_us": 100.0, "bytes": 5000}},
    }))
    assert regress.run_compare(old, new) == 0


@pytest.mark.bench_smoke
def test_compare_degrades_gracefully_on_missing_sections(tmp_path, capsys):
    """A pre-matrix baseline diffs cleanly against a report that has one.

    Sections and rows only one side measured (an older report without
    ``transport_matrix``, a platform that skipped shm) must be listed as
    skipped — never crash the diff, never count as a regression.
    """
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    meta = {"size": regress.QUICK_SIZE}
    old.write_text(json.dumps({
        "meta": meta,
        "transport_rt": {"tcp": {"rt_us": 60.0}},
    }))
    new.write_text(json.dumps({
        "meta": meta,
        "transport_rt": {
            "tcp": {"rt_us": 61.0},
            "shm": {"rt_us": 50.0},
        },
        "transport_matrix": {
            "tcp": {"plain": {"64B": {"rt_us": 100.0}}},
            "shm": {"plain": {"64B": {"rt_us": 80.0}}},
            "shm_vs_uds_speedup_64B": 1.2,
        },
    }))
    assert regress.run_compare(old, new) == 0
    out = capsys.readouterr().out
    assert "transport_rt.tcp.rt_us" in out  # the shared metric diffs
    assert "transport_rt.shm.rt_us  (only in new report, skipped)" in out
    assert (
        "transport_matrix.shm.plain.64B.rt_us  (only in new report, skipped)"
        in out
    )


@pytest.mark.bench_smoke
def test_recorded_zero_copy_beats_staged_shm():
    """The committed full run must record the zero-copy path winning.

    Gated on the recorded ``BENCH_pr10.json`` rather than a live
    re-measure (same rationale as the shm-vs-uds gate): under full-suite
    load a re-measure gates on scheduler noise, not on the two staging
    copies this PR deleted. The claim: at the payload sizes where copy
    cost is visible (4 KiB, 64 KiB), in-place encode + borrowed decode
    round trips are no slower than the staged copy path, and the
    headline ratio grows with payload size.
    """
    report = regress._load_previous(REPO_ROOT / "BENCH_pr10.json")
    assert report is not None, "BENCH_pr10.json missing at the repo root"
    zc = report["zero_copy_matrix"]
    assert "skipped" not in zc, zc
    ratios = zc["shm_zerocopy_vs_shm"]
    for cell in ("4096B", "65536B"):
        copy_cell = zc["copy"][cell]
        zerocopy_cell = zc["zerocopy"][cell]
        assert zerocopy_cell["rt_us"] <= copy_cell["rt_us"], (
            cell, zerocopy_cell, copy_cell,
        )
        assert ratios[cell] >= 1.0
    # The acceptance floor: a clear win at the ring-wrapping payload.
    assert ratios["65536B"] >= 1.10, ratios
