"""CI bench-smoke step: the benchmark-regression runner stays healthy.

Two layers:

* run ``repro.bench.regress --quick`` end to end (into a temp file, so the
  committed full-size ``BENCH_pr1.json`` at the repo root is not clobbered
  by quick-mode numbers) and validate the report it writes;
* re-measure the full-size serde micro encode in-process and hold it to
  the recorded ``BENCH_pr1.json`` within the runner's regression budget.
"""

import json
from pathlib import Path

import pytest

from repro.bench import regress

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.mark.bench_smoke
def test_regress_quick_runs_clean(tmp_path):
    output = tmp_path / "bench_smoke.json"
    rc = regress.main(["--quick", "--output", str(output)])
    assert rc == 0
    report = json.loads(output.read_text())
    assert report["meta"]["quick"] is True
    assert report["meta"]["size"] == regress.QUICK_SIZE
    for profile in ("modern", "legacy"):
        row = report["serde_micro"][profile]
        assert row["encode_us"] > 0
        assert row["decode_us"] > 0
        assert row["bytes"] > 0
    # The profile gap must keep the paper's shape: legacy does strictly
    # more work and writes strictly more bytes.
    assert (
        report["serde_micro"]["modern"]["bytes"]
        < report["serde_micro"]["legacy"]["bytes"]
    )
    assert report["gate"]["passed"] is True


@pytest.mark.bench_smoke
def test_serde_micro_encode_within_recorded_budget():
    recorded = regress._load_previous(REPO_ROOT / "BENCH_pr1.json")
    serde = regress.run_serde_micro(regress.FULL_SIZE, rounds=4, iterations=15)
    failures = regress._check_gate(recorded, serde, regress.FULL_SIZE)
    assert not failures, "; ".join(failures)
