"""IdentityMap / IdentitySet: identity keying, unhashable keys, order."""

import pytest

from repro.util.identity import IdentityMap, IdentitySet


class Weird:
    """Equal to everything, hash collides — identity keying must not care."""

    def __eq__(self, other):
        return True

    def __hash__(self):
        return 7


class TestIdentityMap:
    def test_set_and_get(self):
        m = IdentityMap()
        key = object()
        m[key] = 1
        assert m[key] == 1

    def test_distinct_equal_objects_get_distinct_entries(self):
        m = IdentityMap()
        a, b = Weird(), Weird()
        m[a] = "a"
        m[b] = "b"
        assert m[a] == "a"
        assert m[b] == "b"
        assert len(m) == 2

    def test_unhashable_keys_allowed(self):
        m = IdentityMap()
        key = [1, 2]
        m[key] = "list"
        assert m[key] == "list"

    def test_contains(self):
        m = IdentityMap()
        key = object()
        assert key not in m
        m[key] = 1
        assert key in m

    def test_get_default(self):
        m = IdentityMap()
        assert m.get(object()) is None
        assert m.get(object(), 42) == 42

    def test_get_finds_existing(self):
        m = IdentityMap()
        key = object()
        m[key] = "x"
        assert m.get(key, "default") == "x"

    def test_missing_key_raises(self):
        m = IdentityMap()
        with pytest.raises(KeyError):
            m[object()]

    def test_delete(self):
        m = IdentityMap()
        key = object()
        m[key] = 1
        del m[key]
        assert key not in m
        with pytest.raises(KeyError):
            del m[key]

    def test_setdefault(self):
        m = IdentityMap()
        key = object()
        assert m.setdefault(key, 1) == 1
        assert m.setdefault(key, 2) == 1

    def test_pop(self):
        m = IdentityMap()
        key = object()
        m[key] = 5
        assert m.pop(key) == 5
        assert m.pop(key, "gone") == "gone"
        with pytest.raises(KeyError):
            m.pop(key)

    def test_iteration_order_is_insertion_order(self):
        m = IdentityMap()
        keys = [object() for _ in range(10)]
        for i, key in enumerate(keys):
            m[key] = i
        assert list(m.values()) == list(range(10))
        assert [k for k in m.keys()] == keys
        assert [(k, v) for k, v in m.items()] == list(zip(keys, range(10)))

    def test_overwrite_keeps_single_entry(self):
        m = IdentityMap()
        key = object()
        m[key] = 1
        m[key] = 2
        assert len(m) == 1
        assert m[key] == 2

    def test_clear(self):
        m = IdentityMap()
        m[object()] = 1
        m.clear()
        assert len(m) == 0

    def test_key_object_is_pinned(self):
        """The map must hold a strong ref so ids cannot be recycled."""
        m = IdentityMap()
        m[[1]] = "v"  # no other reference to the key list
        keys = list(m.keys())
        assert keys[0] == [1]


class TestIdentitySet:
    def test_add_and_contains(self):
        s = IdentitySet()
        item = object()
        assert item not in s
        s.add(item)
        assert item in s
        assert len(s) == 1

    def test_equal_but_distinct_items_both_stored(self):
        s = IdentitySet()
        a, b = Weird(), Weird()
        s.add(a)
        s.add(b)
        assert len(s) == 2

    def test_init_from_iterable(self):
        items = [object(), object()]
        s = IdentitySet(items)
        assert all(item in s for item in items)

    def test_unhashable_members(self):
        s = IdentitySet()
        member = {"a": 1}
        s.add(member)
        assert member in s

    def test_discard_and_remove(self):
        s = IdentitySet()
        item = object()
        s.add(item)
        s.discard(item)
        assert item not in s
        s.discard(item)  # idempotent
        with pytest.raises(KeyError):
            s.remove(item)

    def test_add_is_idempotent(self):
        s = IdentitySet()
        item = object()
        s.add(item)
        s.add(item)
        assert len(s) == 1

    def test_iteration_yields_members(self):
        items = [object() for _ in range(5)]
        s = IdentitySet(items)
        assert sorted(map(id, s)) == sorted(map(id, items))

    def test_clear(self):
        s = IdentitySet([object()])
        s.clear()
        assert len(s) == 0
