"""Property-based tests: the wire format on arbitrary value shapes."""

import math
from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.serde.profiles import LEGACY_PROFILE, MODERN_PROFILE
from repro.serde.reader import ObjectReader
from repro.serde.writer import ObjectWriter

from tests.model_helpers import Box, Node, Pair, SlottedPoint, heap_fingerprint

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)

hashable_values = st.one_of(
    scalars,
    st.tuples(scalars, scalars),
    st.frozensets(scalars, max_size=4),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.tuples(children, children),
        st.dictionaries(hashable_values, children, max_size=4),
        st.sets(hashable_values, max_size=4),
        st.frozensets(hashable_values, max_size=4),
    ),
    max_leaves=25,
)


def roundtrip(value, profile=MODERN_PROFILE):
    writer = ObjectWriter(profile=profile)
    writer.write_root(value)
    reader = ObjectReader(writer.getvalue(), profile=profile)
    result = reader.read_root()
    reader.expect_end()
    return result


@settings(max_examples=150)
@given(values)
def test_roundtrip_preserves_equality(value):
    assert roundtrip(value) == value


@settings(max_examples=60)
@given(values)
def test_legacy_and_modern_decode_identically(value):
    assert roundtrip(value, LEGACY_PROFILE) == roundtrip(value, MODERN_PROFILE)


@settings(max_examples=60)
@given(values)
def test_roundtrip_preserves_types(value):
    result = roundtrip(value)
    assert type(result) is type(value)


@settings(max_examples=60)
@given(st.lists(values, min_size=1, max_size=4))
def test_multi_root_stream(roots):
    writer = ObjectWriter()
    for root in roots:
        writer.write_root(root)
    reader = ObjectReader(writer.getvalue())
    decoded = [reader.read_root() for _ in roots]
    reader.expect_end()
    assert decoded == roots


@settings(max_examples=60)
@given(st.lists(st.integers(), min_size=1, max_size=6))
def test_aliased_graph_fingerprint_stable(items):
    """Sharing a sub-list twice must decode to one shared object."""
    shared = list(items)
    graph = {"a": shared, "b": shared, "c": [shared, items]}
    decoded = roundtrip(graph)
    assert decoded["a"] is decoded["b"]
    assert decoded["c"][0] is decoded["a"]
    assert heap_fingerprint([graph]) == heap_fingerprint([decoded])


@settings(max_examples=60)
@given(values)
def test_linear_maps_align(value):
    writer = ObjectWriter()
    writer.write_root(value)
    reader = ObjectReader(writer.getvalue())
    reader.read_root()
    assert len(writer.linear_map) == len(reader.linear_map)
    for original, copy in zip(writer.linear_map, reader.linear_map):
        assert type(original) is type(copy)


@settings(max_examples=40)
@given(st.floats())
def test_float_bit_exactness(value):
    result = roundtrip(value)
    if math.isnan(value):
        assert math.isnan(result)
    else:
        assert result == value
        assert math.copysign(1.0, result) == math.copysign(1.0, value)


# ---------------------------------------------------------------------------
# Compiled plans vs the generic encoder: byte-identity on object graphs.
# ---------------------------------------------------------------------------

#: The modern profile with compiled plans switched off — same accessor,
#: interning, and buffer layer, so any byte difference is the plan's fault.
MODERN_NO_PLANS = replace(
    MODERN_PROFILE, name="modern-noplans", use_compiled_plans=False
)

object_graphs = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.builds(Node, data=children, next=st.none() | st.builds(Node, data=children)),
        st.builds(Pair, first=children, second=children),
        st.builds(
            SlottedPoint,
            x=st.integers(min_value=-(2**40), max_value=2**40),
            y=st.integers(min_value=-(2**40), max_value=2**40),
        ),
        st.builds(Box, payload=children),
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=3),
    ),
    max_leaves=20,
)


@settings(max_examples=100)
@given(object_graphs)
def test_compiled_plans_encode_byte_identical(graph):
    """Plan-compiled and generic modern encodes agree byte for byte."""
    with_plans = ObjectWriter(profile=MODERN_PROFILE)
    with_plans.write_root(graph)
    without_plans = ObjectWriter(profile=MODERN_NO_PLANS)
    without_plans.write_root(graph)
    assert with_plans.getvalue() == without_plans.getvalue()


@settings(max_examples=60)
@given(object_graphs)
def test_compiled_plans_roundtrip_isomorphic(graph):
    """The compiled path still reconstructs an isomorphic heap."""
    writer = ObjectWriter(profile=MODERN_PROFILE)
    writer.write_root(graph)
    reader = ObjectReader(writer.getvalue(), profile=MODERN_PROFILE)
    decoded = reader.read_root()
    reader.expect_end()
    assert heap_fingerprint([graph]) == heap_fingerprint([decoded])
    assert len(writer.linear_map) == len(reader.linear_map)


@settings(max_examples=40)
@given(object_graphs)
def test_compiled_plans_legacy_still_decodes(graph):
    """Streams written by the compiled path stay readable under legacy
    decoding — one wire format, two implementations."""
    writer = ObjectWriter(profile=MODERN_PROFILE)
    writer.write_root(graph)
    decoded = ObjectReader(writer.getvalue(), profile=MODERN_NO_PLANS).read_root()
    assert heap_fingerprint([graph]) == heap_fingerprint([decoded])


@settings(max_examples=40)
@given(st.integers(min_value=0, max_value=50))
def test_compiled_plans_aliasing_and_cycles(n):
    """Handles/backrefs from the compiled path preserve sharing and cycles."""
    head = Node(data=n)
    head.next = Node(data=[head, head])  # cycle plus a shared alias
    graph = Pair(first=head, second=head.next)
    writer = ObjectWriter(profile=MODERN_PROFILE)
    writer.write_root(graph)
    baseline = ObjectWriter(profile=MODERN_NO_PLANS)
    baseline.write_root(graph)
    assert writer.getvalue() == baseline.getvalue()
    decoded = ObjectReader(writer.getvalue(), profile=MODERN_PROFILE).read_root()
    assert decoded.first.next is decoded.second
    assert decoded.second.data[0] is decoded.first
    assert heap_fingerprint([graph]) == heap_fingerprint([decoded])


# --------------------------------------------------------------------------
# Exec-generated serde (repro.serde.codegen). The oracle here keeps the
# interpreted plans *on* and only flips codegen off — same plans, same
# accessor and buffer layer, so any byte difference is the generated
# function's fault.

MODERN_NO_CODEGEN = replace(
    MODERN_PROFILE, name="modern-nocodegen", use_codegen=False
)


@settings(max_examples=100)
@given(object_graphs)
def test_codegen_encode_byte_identical(graph):
    """Generated encoders and interpreted plans agree byte for byte."""
    with_codegen = ObjectWriter(profile=MODERN_PROFILE)
    with_codegen.write_root(graph)
    interpreted = ObjectWriter(profile=MODERN_NO_CODEGEN)
    interpreted.write_root(graph)
    assert with_codegen.getvalue() == interpreted.getvalue()


@settings(max_examples=60)
@given(object_graphs)
def test_codegen_decode_matches_interpreted(graph):
    """Generated decoders reconstruct the same heap, with aligned linear
    maps, as the interpreted frame machine reading the same stream."""
    writer = ObjectWriter(profile=MODERN_PROFILE)
    writer.write_root(graph)
    stream = writer.getvalue()
    fast = ObjectReader(stream, profile=MODERN_PROFILE)
    slow = ObjectReader(stream, profile=MODERN_NO_CODEGEN)
    fast_graph, slow_graph = fast.read_root(), slow.read_root()
    assert heap_fingerprint([fast_graph]) == heap_fingerprint([slow_graph])
    assert heap_fingerprint([graph]) == heap_fingerprint([fast_graph])
    assert len(fast.linear_map) == len(slow.linear_map)


@settings(max_examples=40)
@given(object_graphs)
def test_codegen_reads_interpreted_streams(graph):
    """The cross direction: interpreted-written streams decode under the
    generated functions — one wire format, three implementations."""
    writer = ObjectWriter(profile=MODERN_NO_CODEGEN)
    writer.write_root(graph)
    decoded = ObjectReader(writer.getvalue(), profile=MODERN_PROFILE).read_root()
    assert heap_fingerprint([graph]) == heap_fingerprint([decoded])


@settings(max_examples=40)
@given(st.integers(min_value=0, max_value=50))
def test_codegen_aliasing_and_cycles(n):
    """Generated encode/decode preserve sharing and cycles (the handle
    machinery is interpolated into the generated source)."""
    head = Node(data=n)
    head.next = Node(data=[head, head])  # cycle plus a shared alias
    graph = Pair(first=head, second=head.next)
    writer = ObjectWriter(profile=MODERN_PROFILE)
    writer.write_root(graph)
    baseline = ObjectWriter(profile=MODERN_NO_CODEGEN)
    baseline.write_root(graph)
    assert writer.getvalue() == baseline.getvalue()
    decoded = ObjectReader(writer.getvalue(), profile=MODERN_PROFILE).read_root()
    assert decoded.first.next is decoded.second
    assert decoded.second.data[0] is decoded.first
    assert heap_fingerprint([graph]) == heap_fingerprint([decoded])


def test_codegen_deep_graph_bails_identically():
    """Past MAX_CODEGEN_DEPTH the generated functions bail to the
    interpreted machinery mid-stream; the splice must be invisible."""
    head = tail = Node(data=0)
    for i in range(1, 300):  # well past the generated-recursion budget
        tail.next = Node(data=i)
        tail = tail.next
    fast = ObjectWriter(profile=MODERN_PROFILE)
    fast.write_root(head)
    slow = ObjectWriter(profile=MODERN_NO_CODEGEN)
    slow.write_root(head)
    assert fast.getvalue() == slow.getvalue()
    decoded = ObjectReader(fast.getvalue(), profile=MODERN_PROFILE).read_root()
    assert heap_fingerprint([head]) == heap_fingerprint([decoded])
