"""Compiled serde plans: registry caching, version invalidation, identity.

The plan compiler (:mod:`repro.serde.plans`) must be invisible on the wire:
compiled and generic encoding agree byte for byte, and its caches must
follow ``__nrmi_version__`` — a bumped version means a stale plan would
stamp the wrong version into class descriptors, so the registry recompiles.

The exec-generated plans (:mod:`repro.serde.codegen`) add a second
invalidation axis: generated source bakes descriptor blobs in, so the
registry also recompiles them when the process-wide schema epoch moves.
"""

from dataclasses import replace

import pytest

from repro.core.markers import Restorable, Serializable
from repro.serde import codegen as codegen_mod
from repro.serde.codegen import (
    CodegenDecodePlan,
    CodegenEncodePlan,
    codegen_metrics,
)
from repro.serde.plans import DecodePlan, EncodePlan
from repro.serde.profiles import MODERN_PROFILE
from repro.serde.reader import ObjectReader
from repro.serde.registry import ClassRegistry, global_registry
from repro.serde.schema import global_schema_table
from repro.serde.writer import ObjectWriter

from tests.model_helpers import Node, Pair

MODERN_NO_PLANS = replace(
    MODERN_PROFILE, name="modern-noplans", use_compiled_plans=False
)
# Interpreted-plan path with codegen off: the correctness oracle the
# generated functions must match byte for byte.
MODERN_NO_CODEGEN = replace(
    MODERN_PROFILE, name="modern-nocodegen", use_codegen=False
)


class Versioned(Serializable):
    __nrmi_version__ = 1

    def __init__(self, a=0, b=""):
        self.a = a
        self.b = b


class PlainRecord(Restorable):
    def __init__(self, x=None):
        self.x = x


@pytest.fixture
def registry():
    reg = ClassRegistry()
    reg.register(Versioned, name="versioned")
    reg.register(PlainRecord, name="plain-record")
    return reg


class TestPlanCache:
    def test_plans_are_cached_per_class(self, registry):
        first = registry.encode_plan_for(Versioned)
        second = registry.encode_plan_for(Versioned)
        assert isinstance(first, EncodePlan)
        assert first is second
        assert registry.decode_plan_for(Versioned) is registry.decode_plan_for(
            Versioned
        )

    def test_registries_do_not_share_plans(self, registry):
        other = ClassRegistry()
        other.register(Versioned, name="versioned")
        assert registry.encode_plan_for(Versioned) is not other.encode_plan_for(
            Versioned
        )

    def test_plan_records_class_version(self, registry):
        assert registry.encode_plan_for(Versioned).version == 1
        assert registry.decode_plan_for(Versioned).version == 1
        assert registry.encode_plan_for(PlainRecord).version == 0

    def test_version_bump_invalidates_encode_and_decode_plans(self, registry):
        stale_encode = registry.encode_plan_for(Versioned)
        stale_decode = registry.decode_plan_for(Versioned)
        Versioned.__nrmi_version__ = 2
        try:
            fresh_encode = registry.encode_plan_for(Versioned)
            fresh_decode = registry.decode_plan_for(Versioned)
            assert fresh_encode is not stale_encode
            assert fresh_decode is not stale_decode
            assert fresh_encode.version == 2
            assert fresh_decode.version == 2
            # Stable until the version moves again.
            assert registry.encode_plan_for(Versioned) is fresh_encode
        finally:
            Versioned.__nrmi_version__ = 1

    def test_bumped_version_reaches_the_wire(self, registry):
        """The recompiled plan stamps the new version into descriptors —
        the whole point of invalidation."""

        writer = ObjectWriter(profile=MODERN_PROFILE, registry=registry)
        writer.write_root(Versioned())
        before = writer.getvalue()
        Versioned.__nrmi_version__ = 7
        try:
            writer = ObjectWriter(profile=MODERN_PROFILE, registry=registry)
            writer.write_root(Versioned())
            after = writer.getvalue()
        finally:
            Versioned.__nrmi_version__ = 1
        assert before != after  # the descriptor carries the bumped version

    def test_invalidate_plans_single_class(self, registry):
        versioned = registry.encode_plan_for(Versioned)
        plain = registry.encode_plan_for(PlainRecord)
        registry.invalidate_plans(Versioned)
        assert registry.encode_plan_for(Versioned) is not versioned
        assert registry.encode_plan_for(PlainRecord) is plain

    def test_invalidate_plans_all(self, registry):
        encode = registry.encode_plan_for(Versioned)
        decode = registry.decode_plan_for(Versioned)
        registry.invalidate_plans()
        assert registry.encode_plan_for(Versioned) is not encode
        assert registry.decode_plan_for(Versioned) is not decode

    def test_decode_plan_shape(self, registry):
        plan = registry.decode_plan_for(PlainRecord)
        assert isinstance(plan, DecodePlan)
        instance = plan.factory()
        assert type(instance) is PlainRecord
        assert plan.needs_resolve is False
        assert plan.has_upgrade is False


class TestCodegenPlanCache:
    """The generated-function caches: version *and* epoch invalidation."""

    def test_codegen_plans_cached_per_class(self, registry):
        encode = registry.codegen_encode_plan_for(Versioned)
        decode = registry.codegen_decode_plan_for(Versioned)
        assert isinstance(encode, CodegenEncodePlan)
        assert isinstance(decode, CodegenDecodePlan)
        assert registry.codegen_encode_plan_for(Versioned) is encode
        assert registry.codegen_decode_plan_for(Versioned) is decode
        # Cached separately from the interpreted plans.
        assert registry.encode_plan_for(Versioned) is not encode

    def test_version_bump_recompiles_codegen_plans(self, registry):
        stale_encode = registry.codegen_encode_plan_for(Versioned)
        stale_decode = registry.codegen_decode_plan_for(Versioned)
        Versioned.__nrmi_version__ = 2
        try:
            fresh_encode = registry.codegen_encode_plan_for(Versioned)
            fresh_decode = registry.codegen_decode_plan_for(Versioned)
            assert fresh_encode is not stale_encode
            assert fresh_decode is not stale_decode
            assert fresh_encode.version == 2
            assert fresh_decode.version == 2
            # Stable until the version moves again.
            assert registry.codegen_encode_plan_for(Versioned) is fresh_encode
        finally:
            Versioned.__nrmi_version__ = 1

    def test_bumped_version_reaches_the_codegen_wire(self, registry):
        """The recompiled generated encoder stamps the new version into
        its baked class blob — a stale function would ship version 1."""
        writer = ObjectWriter(profile=MODERN_PROFILE, registry=registry)
        writer.write_root(Versioned())
        before = writer.getvalue()
        Versioned.__nrmi_version__ = 7
        try:
            writer = ObjectWriter(profile=MODERN_PROFILE, registry=registry)
            writer.write_root(Versioned())
            after = writer.getvalue()
            # ... and it matches what the interpreted path says version 7
            # looks like.
            oracle = ObjectWriter(
                profile=MODERN_NO_CODEGEN, registry=registry
            )
            oracle.write_root(Versioned())
            assert after == oracle.getvalue()
        finally:
            Versioned.__nrmi_version__ = 1
        assert before != after

    def test_schema_epoch_bump_recompiles_codegen_plans(self, registry):
        """A :meth:`GlobalSchemaTable.reset` invalidates every generated
        function (their source bakes descriptor blobs in); the interpreted
        plans, which consult the table at run time, survive."""
        codegen_encode = registry.codegen_encode_plan_for(Versioned)
        codegen_decode = registry.codegen_decode_plan_for(Versioned)
        interpreted = registry.encode_plan_for(Versioned)
        assert codegen_encode.epoch == global_schema_table.epoch
        global_schema_table.reset()
        fresh_encode = registry.codegen_encode_plan_for(Versioned)
        fresh_decode = registry.codegen_decode_plan_for(Versioned)
        assert fresh_encode is not codegen_encode
        assert fresh_decode is not codegen_decode
        assert fresh_encode.epoch == global_schema_table.epoch
        assert registry.encode_plan_for(Versioned) is interpreted

    def test_compiled_counter_counts_generated_functions(self, registry):
        before = codegen_metrics.counter("serde.codegen.compiled").value
        registry.codegen_encode_plan_for(Versioned)
        registry.codegen_decode_plan_for(Versioned)
        after = codegen_metrics.counter("serde.codegen.compiled").value
        assert after == before + 2
        # Cache hits don't recompile.
        registry.codegen_encode_plan_for(Versioned)
        assert codegen_metrics.counter("serde.codegen.compiled").value == after

    def test_compile_failure_falls_back_byte_identically(
        self, registry, monkeypatch
    ):
        """A codegen compile failure must degrade, not break: the fallback
        plan wraps the interpreted closure and the wire bytes are
        unchanged."""
        monkeypatch.setattr(
            codegen_mod,
            "_build_encode_source",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        fallbacks = codegen_metrics.counter("serde.codegen.fallbacks")
        before = fallbacks.value
        value = Versioned(a=11, b="degraded")
        writer = ObjectWriter(profile=MODERN_PROFILE, registry=registry)
        writer.write_root(value)
        broken = writer.getvalue()
        assert fallbacks.value == before + 1
        monkeypatch.undo()
        registry.invalidate_plans(Versioned)
        oracle = ObjectWriter(profile=MODERN_NO_CODEGEN, registry=registry)
        oracle.write_root(value)
        assert broken == oracle.getvalue()


class TestByteIdentity:
    """Compiled output must be indistinguishable from the generic encoder's."""

    def _encode(self, value, profile, registry=None):
        writer = ObjectWriter(profile=profile, registry=registry)
        writer.write_root(value)
        return writer.getvalue()

    @pytest.mark.parametrize(
        "value",
        [
            Versioned(a=-(2**40), b="hello"),
            PlainRecord(x=[1, 2.5, "s", b"b", None, True]),
            Versioned(a=2**70, b="big ints take the INT_BIG path"),
            PlainRecord(x={"k": Versioned(a=1, b="nested")}),
        ],
        ids=["scalars", "container", "int-big", "nested"],
    )
    def test_isolated_registry_byte_identity(self, registry, value):
        compiled = self._encode(value, MODERN_PROFILE, registry)
        generic = self._encode(value, MODERN_NO_PLANS, registry)
        assert compiled == generic

    def test_global_registry_shared_and_cyclic(self):
        shared = Node(data="shared")
        shared.next = shared  # self cycle
        graph = Pair(first=[shared, shared], second=Node(data=shared))
        compiled = self._encode(graph, MODERN_PROFILE)
        generic = self._encode(graph, MODERN_NO_PLANS)
        assert compiled == generic
        decoded = ObjectReader(compiled, profile=MODERN_PROFILE).read_root()
        assert decoded.first[0] is decoded.first[1]
        assert decoded.first[0].next is decoded.first[0]
        assert decoded.second.data is decoded.first[0]

    def test_writer_uses_cached_plan_from_registry(self, registry):
        # Prime the registry cache, then confirm the writer's fast path
        # consults it (same plan object, no recompilation).
        plan = registry.encode_plan_for(Versioned)
        writer = ObjectWriter(profile=MODERN_PROFILE, registry=registry)
        writer.write_root(Versioned(a=3, b="warm"))
        assert registry.encode_plan_for(Versioned) is plan

    def test_memo_cap_matches_generic_path(self, registry):
        # Past the memo limit the compiled path must stop interning strings
        # exactly where the generic path does.
        values = PlainRecord(x=[f"s{i}" for i in range(64)] * 2)
        compiled_writer = ObjectWriter(
            profile=MODERN_PROFILE, registry=registry, memo_limit=16
        )
        compiled_writer.write_root(values)
        generic_writer = ObjectWriter(
            profile=MODERN_NO_PLANS, registry=registry, memo_limit=16
        )
        generic_writer.write_root(values)
        assert compiled_writer.getvalue() == generic_writer.getvalue()

    def test_global_registry_has_model_classes(self):
        # The property tests in test_property_serde.py rely on these.
        assert global_registry.is_registered(Node)
        assert global_registry.is_registered(Pair)
