"""Every shipped example must run clean end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(example):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, (
        f"{example.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{example.name} printed nothing"


def test_quickstart_output_mentions_restore():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "copy-restore" in result.stdout


def test_figures_module_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro.bench.figures"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0
    assert "Figure 2" in result.stdout
