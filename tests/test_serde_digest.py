"""Per-slot digests: the dirty/clean decision behind delta-slot replies.

The contract under test is conservative change detection: equal digests
imply the slot is unchanged (never a false "clean"), while value-identical
replacements of referenced objects may digest dirty (a false "dirty" only
costs reply bytes).
"""

import pytest

from repro.errors import RestoreError
from repro.serde.accessors import OPTIMIZED_ACCESSOR
from repro.serde.digest import SlotDigestTable, digest_slots

from tests.model_helpers import Box, Node


def dirty(slots, mutate=None):
    """Digest, optionally mutate, digest again; return dirty indices."""
    before = digest_slots(slots, OPTIMIZED_ACCESSOR)
    if mutate is not None:
        mutate()
    after = digest_slots(slots, OPTIMIZED_ACCESSOR)
    return before.dirty_indices(after)


class TestCleanDetection:
    def test_untouched_slots_are_clean(self):
        node = Node(1, next=Node(2))
        slots = [node, node.next, [1, "x"], {"k": 1}, {3, 4}, bytearray(b"b")]
        assert dirty(slots) == []

    def test_value_equal_tuple_rebuild_is_clean(self):
        """Immutable containers compare by value: replacing a tuple with
        an equal one must not mark the slot dirty."""
        box = Box((1, ("two", 3.0)))

        def rebuild():
            box.payload = (1, ("two", 3.0))

        assert dirty([box], rebuild) == []

    def test_set_iteration_order_is_insensitive(self):
        """Two equal sets digest identically whatever their insertion
        (and therefore iteration) order."""
        forward, backward = set(), set()
        for ch in "abcdefgh":
            forward.add(ch)
        for ch in reversed("abcdefgh"):
            backward.add(ch)
        table = digest_slots([forward, backward], OPTIMIZED_ACCESSOR)
        assert table.tokens[0] == table.tokens[1]


class TestDirtyDetection:
    def test_attribute_change(self):
        node = Node(1)
        assert dirty([node], lambda: setattr(node, "data", 2)) == [0]

    def test_only_mutated_slot_flagged(self):
        nodes = [Node(i) for i in range(5)]
        assert dirty(nodes, lambda: setattr(nodes[3], "data", 99)) == [3]

    def test_list_dict_set_bytearray_changes(self):
        items, mapping, tags, raw = [1], {"k": 1}, {1}, bytearray(b"ab")

        def mutate():
            items.append(2)
            mapping["k"] = 2
            tags.add(2)
            raw[0] = 0

        assert dirty([items, mapping, tags, raw], mutate) == [0, 1, 2, 3]

    def test_reference_replacement_is_dirty(self):
        """A referenced mutable object compares by identity, so swapping
        in a value-equal replacement flags the slot."""
        node = Node(1, next=Node("child"))
        assert dirty([node], lambda: setattr(node, "next", Node("child"))) == [0]

    def test_primitive_type_confusions_differ(self):
        """5 vs 5.0 vs True vs a big int: distinct tags, distinct tokens."""
        slots = [[5], [5.0], [True], [1], [1 << 70]]
        table = digest_slots(slots, OPTIMIZED_ACCESSOR)
        assert len(set(table.tokens)) == len(slots)


class TestTableMechanics:
    def test_mismatched_lengths_raise(self):
        one = digest_slots([Node(1)], OPTIMIZED_ACCESSOR)
        two = digest_slots([Node(1), Node(2)], OPTIMIZED_ACCESSOR)
        with pytest.raises(RestoreError, match="different retained lists"):
            one.dirty_indices(two)

    def test_referenced_objects_are_pinned(self):
        """Id-tokens are only sound while the object is alive; the table
        must hold a strong reference to everything it id-tokenized."""
        node = Node(1, next=Node("child"))
        table = digest_slots([node], OPTIMIZED_ACCESSOR)
        assert any(pin is node.next for pin in table._pins)

    def test_sizes_track_token_lengths(self):
        table = digest_slots([[1, 2, 3], []], OPTIMIZED_ACCESSOR)
        assert table.sizes == [len(table.tokens[0]), len(table.tokens[1])]
        assert len(table) == 2
