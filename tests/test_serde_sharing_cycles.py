"""Aliasing and cycle preservation — what makes copy-restore possible."""

from repro.serde.reader import ObjectReader
from repro.serde.writer import ObjectWriter

from tests.model_helpers import Node, Pair


def roundtrip(*roots):
    writer = ObjectWriter()
    for root in roots:
        writer.write_root(root)
    reader = ObjectReader(writer.getvalue())
    results = [reader.read_root() for _ in roots]
    reader.expect_end()
    return results if len(results) > 1 else results[0]


class TestSharing:
    def test_shared_list_decodes_shared(self):
        shared = [1, 2]
        result = roundtrip([shared, shared])
        assert result[0] is result[1]
        assert result[0] == [1, 2]

    def test_diamond_object_graph(self):
        leaf = Node("leaf")
        left = Node("left", leaf)
        right = Node("right", leaf)
        root = Pair(left, right)
        result = roundtrip(root)
        assert result.first.next is result.second.next
        assert result.first.next.data == "leaf"

    def test_sharing_across_roots_in_one_stream(self):
        """The cross-parameter aliasing property of Section 4.1."""
        shared = Node("shared")
        a = Node("a", shared)
        b = Node("b", shared)
        result_a, result_b = roundtrip(a, b)
        assert result_a.next is result_b.next

    def test_same_root_twice_decodes_to_one_object(self):
        """Passing the same parameter twice must NOT create two copies."""
        param = Node("once")
        first, second = roundtrip(param, param)
        assert first is second

    def test_shared_dict_value(self):
        inner = {"v": 1}
        result = roundtrip({"a": inner, "b": inner, "c": [inner]})
        assert result["a"] is result["b"]
        assert result["a"] is result["c"][0]

    def test_mutating_one_alias_affects_other_after_decode(self):
        shared = [0]
        result = roundtrip((shared, shared))
        result[0][0] = 99
        assert result[1][0] == 99


class TestCycles:
    def test_self_referencing_list(self):
        value = []
        value.append(value)
        result = roundtrip(value)
        assert result[0] is result

    def test_two_element_cycle(self):
        a, b = Node("a"), Node("b")
        a.next = b
        b.next = a
        result = roundtrip(a)
        assert result.data == "a"
        assert result.next.data == "b"
        assert result.next.next is result

    def test_self_referencing_dict(self):
        value = {}
        value["me"] = value
        result = roundtrip(value)
        assert result["me"] is result

    def test_object_pointing_to_itself(self):
        node = Node("self")
        node.next = node
        result = roundtrip(node)
        assert result.next is result

    def test_cycle_through_tuple(self):
        container = []
        knot = (container, "x")
        container.append(knot)
        result = roundtrip(container)
        assert result[0][1] == "x"
        assert result[0][0] is result

    def test_long_cycle(self):
        nodes = [Node(i) for i in range(200)]
        for i, node in enumerate(nodes):
            node.next = nodes[(i + 1) % len(nodes)]
        result = roundtrip(nodes[0])
        walker = result
        for expected in range(200):
            assert walker.data == expected
            walker = walker.next
        assert walker is result

    def test_mutual_aliasing_with_cycle(self):
        a = Node("a")
        b = Node("b", a)
        a.next = b
        holder = [a, b, a, b]
        result = roundtrip(holder)
        assert result[0] is result[2]
        assert result[1] is result[3]
        assert result[0].next is result[1]
        assert result[1].next is result[0]


class TestLinearMapAlignment:
    def test_writer_and_reader_maps_align(self):
        shared = [1]
        graph = {"x": shared, "y": [shared, {2}], "z": Node("n", shared)}
        writer = ObjectWriter()
        writer.write_root(graph)
        reader = ObjectReader(writer.getvalue())
        reader.read_root()
        assert len(writer.linear_map) == len(reader.linear_map)
        for original, copy in zip(writer.linear_map, reader.linear_map):
            assert type(original) is type(copy)

    def test_map_contains_only_mutables(self):
        writer = ObjectWriter()
        writer.write_root([1, "s", (2, 3), frozenset({4}), b"b", [5], {6: 7}])
        kinds = {type(obj) for obj in writer.linear_map}
        assert kinds == {list, dict}

    def test_map_positions_stable(self):
        writer = ObjectWriter()
        a, b = [1], [2]
        writer.write_root([a, b])
        assert writer.linear_map.position_of(a) is not None
        assert writer.linear_map.position_of(b) == writer.linear_map.position_of(a) + 1
