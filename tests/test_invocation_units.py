"""Unit tests for invocation-pipeline pieces: retained-set computation,
the auto reply-policy chooser, and pooled-buffer hygiene on failed calls."""

import pytest

from repro.errors import SerializationError
from repro.nrmi.invocation import ReplyPolicyChooser, compute_retained
from repro.serde.accessors import OPTIMIZED_ACCESSOR
from repro.serde.writer import ObjectWriter

from tests.model_helpers import Box, Node


def marshal(*roots):
    writer = ObjectWriter()
    for root in roots:
        writer.write_root(root)
    return writer.linear_map


class TestComputeRetained:
    def test_no_roots_retains_nothing(self):
        linear_map = marshal(Box([1]))
        assert compute_retained(linear_map, [], OPTIMIZED_ACCESSOR) == []

    def test_single_root_retains_its_closure(self):
        box = Box([Node(1), Node(2)])
        linear_map = marshal(box)
        retained = compute_retained(linear_map, [box], OPTIMIZED_ACCESSOR)
        assert len(retained) == len(linear_map)  # everything reachable

    def test_subset_for_partial_roots(self):
        restorable = Box(Node("keep"))
        copy_only = Box(Node("skip"))
        linear_map = marshal(restorable, copy_only)
        retained = compute_retained(linear_map, [restorable], OPTIMIZED_ACCESSOR)
        kept_ids = {id(obj) for obj in retained}
        assert id(restorable) in kept_ids
        assert id(restorable.payload) in kept_ids
        assert id(copy_only) not in kept_ids
        assert id(copy_only.payload) not in kept_ids

    def test_shared_object_retained_once(self):
        shared = Node("s")
        box_a, box_b = Box(shared), Box(shared)
        linear_map = marshal(box_a, box_b)
        retained = compute_retained(
            linear_map, [box_a, box_b], OPTIMIZED_ACCESSOR
        )
        assert sum(1 for obj in retained if obj is shared) == 1

    def test_map_order_preserved(self):
        box = Box([Node(i) for i in range(5)])
        linear_map = marshal(box)
        retained = compute_retained(linear_map, [box], OPTIMIZED_ACCESSOR)
        positions = [linear_map.position_of(obj) for obj in retained]
        assert positions == sorted(positions)

    def test_both_sides_compute_identical_subsets(self):
        """The client/server agreement the positional match rests on."""
        from repro.serde.reader import ObjectReader

        restorable = Box([Node(1), Node(2)])
        other = Box(Node(3))
        writer = ObjectWriter()
        writer.write_root(restorable)
        writer.write_root(other)
        client_retained = compute_retained(
            writer.linear_map, [restorable], OPTIMIZED_ACCESSOR
        )
        reader = ObjectReader(writer.getvalue())
        server_restorable = reader.read_root()
        reader.read_root()
        server_retained = compute_retained(
            reader.linear_map, [server_restorable], OPTIMIZED_ACCESSOR
        )
        assert len(client_retained) == len(server_retained)
        for client_obj, server_obj in zip(client_retained, server_retained):
            assert type(client_obj) is type(server_obj)

    def test_stops_at_remote_references(self, endpoint_pair):
        """Stubs are leaves: their internals never enter the retained set."""
        from repro.core.markers import Remote

        class Svc(Remote):
            pass

        endpoint_pair.server.bind("svc", Svc())
        stub = endpoint_pair.client.lookup(endpoint_pair.server.address, "svc")
        box = Box(stub)
        writer = ObjectWriter(externalizers=endpoint_pair.client.externalizers())
        writer.write_root(box)
        retained = compute_retained(writer.linear_map, [box], OPTIMIZED_ACCESSOR)
        assert [type(obj).__name__ for obj in retained] == ["Box"]

    def test_cyclic_roots(self):
        a = Node("a")
        b = Node("b", next=a)
        a.next = b
        linear_map = marshal(a)
        retained = compute_retained(linear_map, [a], OPTIMIZED_ACCESSOR)
        assert len(retained) == 2


class TestReplyPolicyChooser:
    ADDR = "inproc://peer"

    def test_defaults_to_delta_without_data(self):
        assert ReplyPolicyChooser().choose(self.ADDR) == "delta"

    def test_sparse_traffic_keeps_delta(self):
        chooser = ReplyPolicyChooser()
        for _ in range(10):
            chooser.observe(self.ADDR, dirty=2, total=100)
        assert chooser.choose(self.ADDR) == "delta"

    def test_dense_traffic_switches_to_full(self):
        chooser = ReplyPolicyChooser()
        for _ in range(10):
            chooser.observe(self.ADDR, dirty=95, total=100)
        assert chooser.choose(self.ADDR) == "full"

    def test_full_mode_probes_delta_periodically(self):
        chooser = ReplyPolicyChooser()
        for _ in range(10):
            chooser.observe(self.ADDR, dirty=100, total=100)
        window = [
            chooser.choose(self.ADDR)
            for _ in range(ReplyPolicyChooser.PROBE_EVERY * 2)
        ]
        assert window.count("delta") == 2  # one probe per window
        assert window[ReplyPolicyChooser.PROBE_EVERY - 1] == "delta"

    def test_probe_observing_sparse_flips_back(self):
        chooser = ReplyPolicyChooser()
        chooser.observe(self.ADDR, dirty=100, total=100)
        assert chooser.choose(self.ADDR) == "full"
        # The workload turned sparse; a few probes pull the EWMA down.
        for _ in range(10):
            chooser.observe(self.ADDR, dirty=0, total=100)
        assert chooser.choose(self.ADDR) == "delta"

    def test_addresses_tracked_independently(self):
        chooser = ReplyPolicyChooser()
        chooser.observe("inproc://dense", dirty=100, total=100)
        chooser.observe("inproc://sparse", dirty=1, total=100)
        assert chooser.choose("inproc://dense") == "full"
        assert chooser.choose("inproc://sparse") == "delta"

    def test_empty_map_ignored(self):
        chooser = ReplyPolicyChooser()
        chooser.observe(self.ADDR, dirty=0, total=0)
        assert chooser.choose(self.ADDR) == "delta"


class Unmarshalable:
    """Not a marker subclass, not registered: marshalling it fails."""


class TestEncodeFailureBufferHygiene:
    def test_failed_marshal_returns_buffers_to_pool(self, endpoint_pair):
        """A call whose arguments fail to marshal must hand its pooled
        encode buffers back — under chaos runs injecting encode faults
        the pool would otherwise drain to nothing."""
        from repro.core.markers import Remote

        class Svc(Remote):
            def poke(self, value):
                return value

        endpoint_pair.server.bind("svc", Svc())
        service = endpoint_pair.client.lookup(
            endpoint_pair.server.address, "svc"
        )
        pool = endpoint_pair.client.buffer_pool
        service.poke(Box(1))  # warm: pooled buffers exist and recycle
        level = len(pool)
        for _ in range(pool.max_buffers * 2):
            with pytest.raises(SerializationError):
                service.poke(Unmarshalable())
            assert len(pool) >= level  # nothing leaked out of the pool
        service.poke(Box(2))  # the pipeline still works afterwards
