"""The repro.analysis linter: rules, engine, suppressions, CLI, JSON.

Fixture modules under ``tests/analysis_fixtures/`` carry ``# expect:
CODE`` markers on the exact lines the analyzer must anchor findings to;
the tests below diff the real findings against those markers, so every
rule code is pinned to both a file and a line.
"""

from __future__ import annotations

import json
import pathlib
import re
import subprocess
import sys

import pytest

from repro.analysis import (
    ALL_RULES,
    RULES_BY_CODE,
    Severity,
    analyze_paths,
    to_json_payload,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import NAKED_SUPPRESSION_CODE, PARSE_ERROR_CODE

ROOT = pathlib.Path(__file__).resolve().parent.parent
FIXTURES = ROOT / "tests" / "analysis_fixtures"

_EXPECT_RE = re.compile(r"#\s*expect:\s*(NRMI\d{3})")
_NEAR_MISS_RE = re.compile(r"#\s*near-miss:\s*((?:NRMI\d{3}[,\s]*)+)")


def expected_markers(*paths: pathlib.Path):
    """(relative_path, code, line) triples from # expect: comments."""
    expected = []
    for path in paths:
        for lineno, text in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for match in _EXPECT_RE.finditer(text):
                expected.append((str(path), match.group(1), lineno))
    return sorted(expected)


def near_miss_markers(*paths: pathlib.Path):
    """(relative_path, code, line) triples from # near-miss: comments."""
    claims = []
    for path in paths:
        for lineno, text in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for match in _NEAR_MISS_RE.finditer(text):
                for code in re.findall(r"NRMI\d{3}", match.group(1)):
                    claims.append((str(path), code, lineno))
    return sorted(claims)


def found_markers(result):
    return sorted((f.path, f.code, f.line) for f in result.findings)


class TestFixtureFindings:
    @pytest.mark.parametrize(
        "fixture",
        [
            "contract_bad.py",
            "serde_bad.py",
            "restore_bad.py",
            "netloop_bad.py",
            "ringspin_bad.py",
            "concurrency_bad.py",
        ],
    )
    def test_exact_codes_and_lines(self, fixture):
        path = FIXTURES / fixture
        result = analyze_paths([str(path)])
        assert found_markers(result) == expected_markers(path)

    def test_locks_fixture_with_suppression(self):
        path = FIXTURES / "locks_bad.py"
        result = analyze_paths([str(path)])
        assert found_markers(result) == expected_markers(path)
        assert [(f.code, f.line) for f in result.suppressed] == [("NRMI031", 43)]

    def test_wire_drift_tree(self):
        files = sorted((FIXTURES / "wire_drift").rglob("*.py"))
        result = analyze_paths([str(FIXTURES / "wire_drift")])
        assert found_markers(result) == expected_markers(*files)
        assert all(f.code == "NRMI032" for f in result.findings)

    @pytest.mark.parametrize("fixture", ["clean.py", "concurrency_clean.py"])
    def test_clean_fixture_reports_nothing(self, fixture):
        result = analyze_paths([str(FIXTURES / fixture)])
        assert result.findings == []
        assert result.suppressed == []
        assert result.exit_code == 0

    def test_rule_coverage_is_broad(self):
        """≥10 distinct codes across all five families, all seeded."""
        seeded = {code for _, code, _ in expected_markers(*FIXTURES.rglob("*.py"))}
        assert len(seeded) >= 10
        families = {RULES_BY_CODE[code].family for code in seeded}
        assert families == {
            "contract",
            "serializability",
            "copy-restore",
            "runtime",
            "concurrency",
        }


class TestRuleLiveness:
    """Meta-test over RULES_BY_CODE: no silently-dead rules.

    Every registered rule must have (a) a bait fixture hit — an
    ``# expect:`` marker that the per-fixture tests pin to an exact
    line — and (b) a clean near-miss — a ``# near-miss:`` marker on a
    line that skirts the rule without firing it.
    """

    def test_every_rule_has_a_bait_hit(self):
        files = sorted(FIXTURES.rglob("*.py"))
        seeded = {code for _, code, _ in expected_markers(*files)}
        missing = sorted(set(RULES_BY_CODE) - seeded)
        assert not missing, f"rules with no bait fixture hit: {missing}"

    def test_every_rule_has_a_near_miss_claim(self):
        files = sorted(FIXTURES.rglob("*.py"))
        claimed = {code for _, code, _ in near_miss_markers(*files)}
        missing = sorted(set(RULES_BY_CODE) - claimed)
        assert not missing, f"rules with no clean near-miss: {missing}"

    def test_bait_hits_fire_and_near_misses_stay_silent(self):
        files = sorted(FIXTURES.rglob("*.py"))
        result = analyze_paths([str(FIXTURES)])
        fired = {(f.path, f.code, f.line) for f in result.findings}
        fired |= {(f.path, f.code, f.line) for f in result.suppressed}
        unfired = [m for m in expected_markers(*files) if m not in fired]
        assert not unfired, f"expect markers with no finding: {unfired}"
        false_positives = [
            m for m in near_miss_markers(*files) if m in fired
        ]
        assert not false_positives, (
            f"near-miss lines that fired: {false_positives}"
        )


class TestLockGuardAliases:
    """Satellite: NRMI031's guard matcher follows lock aliases and
    RLock re-entry, so NRMI041's locksets (built on the same helpers)
    don't inherit the false positives."""

    @staticmethod
    def _lint(tmp_path, source):
        path = tmp_path / "guarded.py"
        path.write_text(source)
        return analyze_paths([str(path)], select=["NRMI031"])

    def test_alias_guard_is_recognized(self, tmp_path):
        result = self._lint(
            tmp_path,
            "import threading\n"
            "class Cell:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.total = 0\n"
            "    def bump(self):\n"
            "        lock = self._lock\n"
            "        with lock:\n"
            "            self.total += 1\n"
            "    def reset(self):\n"
            "        with self._lock:\n"
            "            self.total = 0\n",
        )
        assert result.findings == []

    def test_rlock_reentrant_sections_are_guarded(self, tmp_path):
        result = self._lint(
            tmp_path,
            "import threading\n"
            "class Cell:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "        self.total = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            with self._lock:\n"
            "                self.total += 1\n"
            "    def reset(self):\n"
            "        lock = self._lock\n"
            "        with lock:\n"
            "            self.total = 0\n",
        )
        assert result.findings == []

    def test_truly_bare_store_is_still_flagged(self, tmp_path):
        result = self._lint(
            tmp_path,
            "import threading\n"
            "class Cell:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.total = 0\n"
            "    def bump(self):\n"
            "        lock = self._lock\n"
            "        with lock:\n"
            "            self.total += 1\n"
            "    def reset(self):\n"
            "        self.total = 0\n",
        )
        assert [(f.code, f.line) for f in result.findings] == [("NRMI031", 11)]

    def test_unrelated_alias_is_not_a_guard(self, tmp_path):
        result = self._lint(
            tmp_path,
            "import threading\n"
            "class Cell:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._gate = open('/dev/null')\n"
            "        self.total = 0\n"
            "    def bump(self):\n"
            "        gate = self._gate\n"
            "        with gate:\n"
            "            self.total += 1\n"
            "    def reset(self):\n"
            "        with self._lock:\n"
            "            self.total = 0\n",
        )
        assert [f.code for f in result.findings] == ["NRMI031"]


class TestSarifOutput:
    def test_sarif_shape(self):
        from repro.analysis import to_sarif_payload

        result = analyze_paths([str(FIXTURES / "contract_bad.py")])
        payload = to_sarif_payload(result)
        assert payload["version"] == "2.1.0"
        assert payload["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = payload["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "nrmi-lint"
        rule_ids = {r["id"] for r in driver["rules"]}
        assert rule_ids == set(RULES_BY_CODE)
        assert len(run["results"]) == len(result.findings)
        first = run["results"][0]
        assert first["ruleId"].startswith("NRMI")
        location = first["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("contract_bad.py")
        assert location["region"]["startLine"] >= 1
        assert location["region"]["startColumn"] >= 1

    def test_sarif_levels_match_severities(self):
        from repro.analysis import to_sarif_payload

        result = analyze_paths([str(FIXTURES / "concurrency_bad.py")])
        payload = to_sarif_payload(result)
        by_rule = {r["ruleId"]: r["level"] for r in payload["runs"][0]["results"]}
        assert by_rule["NRMI043"] == "error"
        assert by_rule["NRMI041"] == "warning"

    def test_sarif_carries_in_source_suppressions(self):
        from repro.analysis import to_sarif_payload

        result = analyze_paths([str(FIXTURES / "locks_bad.py")])
        payload = to_sarif_payload(result)
        suppressed = [
            r
            for r in payload["runs"][0]["results"]
            if r.get("suppressions")
        ]
        assert len(suppressed) == 1
        assert suppressed[0]["suppressions"] == [{"kind": "inSource"}]

    def test_cli_format_sarif(self, capsys):
        assert lint_main(["--format", "sarif", str(FIXTURES / "clean.py")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"

    def test_json_flag_conflicts_with_other_formats(self, capsys):
        code = lint_main(
            ["--json", "--format", "sarif", str(FIXTURES / "clean.py")]
        )
        assert code == 2

    def test_json_schema_is_unchanged_by_sarif(self):
        """--json stays byte-stable: schema v1, same fields, same order."""
        result = analyze_paths([str(FIXTURES / "locks_bad.py")])
        payload = to_json_payload(result)
        assert payload["schema"] == 1
        assert sorted(payload) == [
            "findings", "schema", "summary", "suppressed", "tool",
        ]


class TestParallelJobs:
    def test_jobs_output_is_identical_to_serial(self):
        serial = analyze_paths([str(FIXTURES)])
        parallel = analyze_paths([str(FIXTURES)], jobs=2)
        assert to_json_payload(parallel) == to_json_payload(serial)

    def test_jobs_zero_means_auto(self):
        result = analyze_paths([str(FIXTURES / "clean.py")], jobs=0)
        assert result.findings == []

    def test_jobs_respects_select(self):
        serial = analyze_paths([str(FIXTURES)], select=["NRMI011"])
        parallel = analyze_paths([str(FIXTURES)], select=["NRMI011"], jobs=2)
        assert to_json_payload(parallel) == to_json_payload(serial)

    def test_jobs_with_unknown_code_still_raises(self):
        with pytest.raises(KeyError):
            analyze_paths([str(FIXTURES)], select=["NRMI999"], jobs=2)

    def test_cli_rejects_negative_jobs(self, capsys):
        assert lint_main(["--jobs", "-1", str(FIXTURES / "clean.py")]) == 2

    def test_cli_jobs_flag(self, capsys):
        assert lint_main(["--jobs", "2", "--json", str(FIXTURES / "clean.py")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["findings"] == 0


class TestEngine:
    def test_naked_suppression_is_flagged_and_ignored(self, tmp_path):
        source = (
            "import threading\n"
            "class Serializable: pass\n"
            "class Cell(Serializable):\n"
            "    def __init__(self):\n"
            "        self.lock = threading.Lock()  # nrmi: disable=NRMI011\n"
        )
        path = tmp_path / "naked.py"
        path.write_text(source)
        result = analyze_paths([str(path)])
        codes = {f.code for f in result.findings}
        assert "NRMI011" in codes  # suppression without reason is ineffective
        assert NAKED_SUPPRESSION_CODE in codes
        assert result.suppressed == []

    def test_justified_suppression_silences(self, tmp_path):
        source = (
            "import threading\n"
            "class Serializable: pass\n"
            "class Cell(Serializable):\n"
            "    def __init__(self):\n"
            "        self.lock = threading.Lock()"
            "  # nrmi: disable=NRMI011 -- rebuilt in __nrmi_resolve__\n"
        )
        path = tmp_path / "justified.py"
        path.write_text(source)
        result = analyze_paths([str(path)])
        assert result.findings == []
        assert [f.code for f in result.suppressed] == ["NRMI011"]

    def test_file_level_suppression(self, tmp_path):
        source = (
            "# nrmi: disable-file=NRMI011 -- fixture: fields rebuilt on load\n"
            "import threading\n"
            "class Serializable: pass\n"
            "class A(Serializable):\n"
            "    def __init__(self):\n"
            "        self.a = threading.Lock()\n"
            "class B(Serializable):\n"
            "    def __init__(self):\n"
            "        self.b = threading.Lock()\n"
        )
        path = tmp_path / "filelevel.py"
        path.write_text(source)
        result = analyze_paths([str(path)])
        assert result.findings == []
        assert len(result.suppressed) == 2

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def nope(:\n")
        result = analyze_paths([str(path)])
        assert [f.code for f in result.findings] == [PARSE_ERROR_CODE]
        assert result.exit_code == 1

    def test_select_and_ignore(self):
        path = str(FIXTURES / "serde_bad.py")
        only_11 = analyze_paths([path], select=["NRMI011"])
        assert {f.code for f in only_11.findings} == {"NRMI011"}
        without_11 = analyze_paths([path], ignore=["NRMI011"])
        assert "NRMI011" not in {f.code for f in without_11.findings}

    def test_unknown_code_raises(self):
        with pytest.raises(KeyError):
            analyze_paths([str(FIXTURES / "clean.py")], select=["NRMI999"])

    def test_findings_are_sorted_and_deduplicated(self):
        result = analyze_paths([str(FIXTURES)])
        keys = [(f.path, f.line, f.col, f.code) for f in result.findings]
        assert keys == sorted(keys)
        assert len({(f.path, f.line, f.code, f.message) for f in result.findings}) == len(
            result.findings
        )


class TestJsonOutput:
    def test_schema_shape(self):
        result = analyze_paths([str(FIXTURES / "locks_bad.py")])
        payload = to_json_payload(result)
        assert payload["schema"] == 1
        assert payload["tool"] == "nrmi-lint"
        assert payload["summary"]["errors"] == 0
        assert payload["summary"]["warnings"] == 1
        assert payload["summary"]["suppressed"] == 1
        assert payload["summary"]["exit_code"] == 0
        (finding,) = payload["findings"]
        for field in ("code", "severity", "path", "line", "col", "message",
                      "hint", "rule", "family"):
            assert field in finding
        assert finding["code"] == "NRMI031"
        assert finding["severity"] == "warning"

    def test_json_round_trips(self):
        result = analyze_paths([str(FIXTURES / "contract_bad.py")])
        encoded = json.dumps(to_json_payload(result), sort_keys=True)
        assert json.loads(encoded)["summary"]["errors"] == result.errors


class TestCli:
    def test_exit_zero_on_clean(self, capsys):
        assert lint_main([str(FIXTURES / "clean.py")]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_exit_one_on_errors(self, capsys):
        assert lint_main([str(FIXTURES / "contract_bad.py")]) == 1
        assert "NRMI001" in capsys.readouterr().out

    def test_warnings_do_not_fail_the_exit_code(self, capsys):
        assert lint_main([str(FIXTURES / "locks_bad.py")]) == 0
        assert "NRMI031" in capsys.readouterr().out

    def test_usage_error_on_missing_path(self, capsys):
        assert lint_main(["definitely/not/a/path"]) == 2

    def test_usage_error_on_unknown_code(self, capsys):
        assert lint_main(["--select", "NRMI999", str(FIXTURES / "clean.py")]) == 2

    def test_usage_error_on_no_paths(self, capsys):
        assert lint_main([]) == 2

    def test_json_flag(self, capsys):
        assert lint_main(["--json", str(FIXTURES / "clean.py")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["findings"] == 0

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.code in out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            capture_output=True,
            text=True,
            cwd=ROOT,
            env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
        assert "NRMI032" in proc.stdout


class TestRuleRegistry:
    def test_families_and_severities(self):
        assert len(ALL_RULES) >= 20
        for rule in ALL_RULES:
            assert re.match(r"^NRMI\d{3}$", rule.code)
            assert rule.scope in ("module", "project")
            assert isinstance(rule.severity, Severity)
            assert rule.doc  # every rule documents itself

    def test_introspection_hooks_exist(self):
        from repro.serde.kinds import code_like_type_names, primitive_type_names
        from repro.serde.registry import global_registry

        assert "function" in code_like_type_names()
        assert "int" in primitive_type_names()
        names = global_registry.registered_names()
        assert isinstance(names, frozenset)


class TestInterfaceMethodsRegression:
    """Satellite: interface_methods must not count arbitrary callables."""

    def test_nested_class_and_callable_attr_excluded(self):
        import functools

        class Contract:
            def ping(self): ...

            class Nested:
                pass

            refresh = functools.partial(print)

        from repro.nrmi.interfaces import interface_methods, is_remote_callable

        assert interface_methods(Contract) == frozenset({"ping"})
        assert not is_remote_callable(Contract.Nested)
        assert not is_remote_callable(Contract.refresh)

    def test_classmethod_and_staticmethod_still_count(self):
        class Contract:
            def plain(self): ...

            @classmethod
            def cls_method(cls): ...

            @staticmethod
            def static_method(): ...

        from repro.nrmi.interfaces import interface_methods

        assert interface_methods(Contract) == frozenset(
            {"plain", "cls_method", "static_method"}
        )

    def test_callables_only_interface_is_rejected(self):
        import functools

        class OnlyCallables:
            refresh = functools.partial(print)

        from repro.errors import RemoteError
        from repro.nrmi.interfaces import interface_methods

        with pytest.raises(RemoteError):
            interface_methods(OnlyCallables)
