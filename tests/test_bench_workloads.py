"""Benchmark workload generation and mutators."""

import pytest

from repro.bench.mutators import mutate_data, mutate_structure, mutator_for
from repro.bench.trees import (
    ALIAS_FRACTION,
    SCENARIOS,
    TreeNode,
    generate_workload,
)

from tests.model_helpers import heap_fingerprint


def tree_nodes(root):
    out = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        out.append(node)
        stack.append(node.right)
        stack.append(node.left)
    return out


class TestGeneration:
    @pytest.mark.parametrize("size", [1, 2, 16, 64, 257])
    def test_exact_node_count(self, size):
        workload = generate_workload("I", size, seed=1)
        assert len(tree_nodes(workload.root)) == size

    def test_deterministic_for_seed(self):
        a = generate_workload("III", 64, seed=7)
        b = generate_workload("III", 64, seed=7)
        assert heap_fingerprint([a.root]) == heap_fingerprint([b.root])
        assert [n.data for n in a.aliases] == [n.data for n in b.aliases]

    def test_different_seeds_differ(self):
        a = generate_workload("III", 64, seed=1)
        b = generate_workload("III", 64, seed=2)
        assert heap_fingerprint([a.root]) != heap_fingerprint([b.root])

    def test_scenario_i_has_no_aliases(self):
        assert generate_workload("I", 32, seed=1).aliases == []

    @pytest.mark.parametrize("scenario", ["II", "III"])
    def test_aliased_scenarios_have_aliases(self, scenario):
        workload = generate_workload(scenario, 64, seed=3)
        expected = max(1, int(64 * ALIAS_FRACTION))
        assert len(workload.aliases) == expected
        node_ids = {id(n) for n in tree_nodes(workload.root)}
        assert all(id(alias) in node_ids for alias in workload.aliases)

    def test_root_never_aliased(self):
        workload = generate_workload("III", 64, seed=3)
        assert all(alias is not workload.root for alias in workload.aliases)

    def test_invalid_scenario(self):
        with pytest.raises(ValueError):
            generate_workload("IV", 16, seed=1)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            generate_workload("I", 0, seed=1)

    def test_nodes_in_order_deterministic(self):
        workload = generate_workload("II", 32, seed=5)
        assert [n.data for n in workload.nodes_in_order()] == [
            n.data for n in workload.nodes_in_order()
        ]

    def test_visible_data_covers_aliases(self):
        workload = generate_workload("II", 32, seed=5)
        shape, alias_view = workload.visible_data()
        assert len(alias_view) == len(workload.aliases)
        assert len([x for x in shape if x is not None]) == 32


class TestMutators:
    def test_mutate_data_changes_values_not_structure(self):
        workload = generate_workload("II", 64, seed=9)
        before_shape = [
            (node.left is not None, node.right is not None)
            for node in workload.nodes_in_order()
        ]
        changed = mutate_data(workload.root, seed=9)
        after_shape = [
            (node.left is not None, node.right is not None)
            for node in workload.nodes_in_order()
        ]
        assert changed > 0
        assert before_shape == after_shape

    def test_mutate_data_deterministic(self):
        a = generate_workload("II", 64, seed=9)
        b = generate_workload("II", 64, seed=9)
        mutate_data(a.root, seed=4)
        mutate_data(b.root, seed=4)
        assert heap_fingerprint([a.root]) == heap_fingerprint([b.root])

    def test_mutate_structure_deterministic(self):
        a = generate_workload("III", 64, seed=9)
        b = generate_workload("III", 64, seed=9)
        mutate_structure(a.root, seed=4)
        mutate_structure(b.root, seed=4)
        assert heap_fingerprint([a.root]) == heap_fingerprint([b.root])

    def test_mutate_structure_allocates_new_nodes(self):
        workload = generate_workload("III", 128, seed=11)
        before = {id(n) for n in tree_nodes(workload.root)}
        mutate_structure(workload.root, seed=11)
        after_nodes = tree_nodes(workload.root)
        assert any(id(n) not in before for n in after_nodes)
        assert any(n.data > 20_000 for n in after_nodes)  # spliced payloads

    def test_root_object_remains_root(self):
        workload = generate_workload("III", 32, seed=13)
        root = workload.root
        mutate_structure(root, seed=13)
        assert workload.root is root

    def test_mutator_for_mapping(self):
        assert mutator_for("I") is mutate_structure
        assert mutator_for("II") is mutate_data
        assert mutator_for("III") is mutate_structure
