"""Batch failure modes: dead endpoints, transport faults, reply mismatch."""

import pytest

from repro.core.markers import Remote
from repro.errors import RemoteError, TransportError
from repro.nrmi.runtime import Endpoint
from repro.transport.fault import FaultInjectingChannel
from repro.transport.resolver import ChannelResolver

from tests.model_helpers import Box


class Adder(Remote):
    def add(self, a, b):
        return a + b


class TestBatchTransportFailures:
    def _world(self):
        resolver = ChannelResolver()
        server = Endpoint(name="bf-server", resolver=resolver)
        client = Endpoint(name="bf-client", resolver=resolver)
        faulty = {}

        def wrap(inner):
            channel = FaultInjectingChannel(inner, failure_rate=0.0)
            faulty["channel"] = channel
            return channel

        resolver.set_wrapper(server.address, wrap)
        server.bind("adder", Adder())
        service = client.lookup(server.address, "adder")
        return resolver, server, client, service, faulty

    def test_transport_failure_fans_out_to_all_handles(self):
        resolver, server, client, service, faulty = self._world()
        try:
            batch = client.batch()
            handles = [batch.call(service, "add", i, i) for i in range(5)]
            faulty["channel"].fail_next()
            batch.flush()
            for handle in handles:
                assert handle.done
                with pytest.raises(TransportError):
                    handle.result()
        finally:
            client.close()
            server.close()
            resolver.close_all()

    def test_batch_to_two_endpoints_fails_independently(self):
        resolver = ChannelResolver()
        healthy_server = Endpoint(name="healthy", resolver=resolver)
        dying_server = Endpoint(name="dying", resolver=resolver)
        client = Endpoint(name="bclient", resolver=resolver)
        try:
            healthy_server.bind("adder", Adder())
            dying_server.bind("adder", Adder())
            healthy = client.lookup(healthy_server.address, "adder")
            dying = client.lookup(dying_server.address, "adder")

            batch = client.batch()
            ok_handle = batch.call(healthy, "add", 1, 1)
            dead_handle = batch.call(dying, "add", 2, 2)
            dying_server.close()  # dies before flush
            batch.flush()

            assert ok_handle.result() == 2
            with pytest.raises(TransportError):
                dead_handle.result()
        finally:
            client.close()
            healthy_server.close()
            resolver.close_all()

    def test_reply_count_mismatch_detected(self, endpoint_pair):
        """A buggy/hostile server answering with the wrong number of
        sub-responses must fail every handle, not crash or misattribute."""
        from repro.nrmi.batch import CallBatch
        from repro.rmi.protocol import encode_batch_responses, ok_response
        from repro.transport.inproc import InProcChannel

        service = endpoint_pair.serve(Adder())

        class LyingChannel(InProcChannel):
            def request(self, payload: bytes) -> bytes:
                return ok_response(encode_batch_responses([ok_response(b"\x00")]))

        batch = endpoint_pair.client.batch()
        one = batch.call(service, "add", 1, 1)
        two = batch.call(service, "add", 2, 2)
        # Swap the channel under the batch for the lying one.
        lying = LyingChannel(lambda data: b"")
        endpoint_pair.client.resolver._channels[
            endpoint_pair.server.address
        ] = lying
        try:
            batch.flush()
        finally:
            endpoint_pair.client.resolver.drop(endpoint_pair.server.address)
        for handle in (one, two):
            with pytest.raises(RemoteError, match="carries 1 results"):
                handle.result()

    def test_double_flush_is_idempotent(self, endpoint_pair):
        service = endpoint_pair.serve(Adder())
        batch = endpoint_pair.client.batch()
        handle = batch.call(service, "add", 3, 4)
        batch.flush()
        batch.flush()
        assert handle.result() == 7

    def test_non_stub_rejected(self, endpoint_pair):
        batch = endpoint_pair.client.batch()
        with pytest.raises(RemoteError):
            batch.call("not-a-stub", "add", 1, 2)
