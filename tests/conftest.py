"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import itertools

import pytest

from repro.nrmi.config import NRMIConfig
from repro.nrmi.runtime import Endpoint
from repro.serde.registry import global_registry
from repro.transport.resolver import ChannelResolver

_unique_counter = itertools.count()


def fresh_class(name_hint: str, bases: tuple = (), namespace: dict | None = None) -> type:
    """Create and register a uniquely named class (tests re-run safely).

    Classes defined inside test functions share qualified names across
    runs; the global registry rejects re-registering a name for a
    different class object, so test classes get unique registry names.
    """
    from repro.core.markers import Serializable

    suffix = next(_unique_counter)
    cls = type(f"{name_hint}_{suffix}", bases, dict(namespace or {}))
    if not issubclass(cls, Serializable):
        # Marker subclasses self-register via __init_subclass__.
        global_registry.register(cls, name=f"tests.{name_hint}_{suffix}")
    return cls


class EndpointPair:
    """A private two-endpoint world for one test."""

    def __init__(
        self,
        server_config: NRMIConfig | None = None,
        client_config: NRMIConfig | None = None,
    ) -> None:
        self.resolver = ChannelResolver()
        self.server = Endpoint(
            name="test-server", config=server_config, resolver=self.resolver
        )
        self.client = Endpoint(
            name="test-client", config=client_config, resolver=self.resolver
        )

    def serve(self, service, name: str = "svc"):
        self.server.bind(name, service)
        return self.client.lookup(self.server.address, name)

    def close(self) -> None:
        self.client.close()
        self.server.close()
        self.resolver.close_all()


@pytest.fixture
def endpoint_pair():
    """Default-config endpoint pair with automatic teardown."""
    pair = EndpointPair()
    yield pair
    pair.close()


@pytest.fixture
def make_endpoint_pair():
    """Factory fixture for pairs with custom configs."""
    pairs: list[EndpointPair] = []

    def factory(server_config=None, client_config=None) -> EndpointPair:
        pair = EndpointPair(server_config, client_config)
        pairs.append(pair)
        return pair

    yield factory
    for pair in pairs:
        pair.close()
