"""Field accessors (portable vs optimized) and serialization profiles."""

import pytest

from repro.errors import SerializationError
from repro.serde.accessors import (
    OPTIMIZED_ACCESSOR,
    PORTABLE_ACCESSOR,
    OptimizedAccessor,
    accessor_by_name,
)
from repro.serde.profiles import (
    LEGACY_PROFILE,
    MODERN_PROFILE,
    profile_by_name,
)

from tests.model_helpers import Pair, SlottedPoint


@pytest.fixture(params=[PORTABLE_ACCESSOR, OPTIMIZED_ACCESSOR], ids=["portable", "optimized"])
def accessor(request):
    return request.param


class TestAccessorContract:
    def test_get_state_returns_fields(self, accessor):
        state = dict(accessor.get_state(Pair(1, 2)))
        assert state == {"first": 1, "second": 2}

    def test_get_state_slots(self, accessor):
        state = dict(accessor.get_state(SlottedPoint(5, 6)))
        assert state == {"x": 5, "y": 6}

    def test_set_state_replaces(self, accessor):
        pair = Pair(1, 2)
        accessor.set_state(pair, [("first", 10), ("second", 20)])
        assert (pair.first, pair.second) == (10, 20)

    def test_set_field(self, accessor):
        pair = Pair(1, 2)
        accessor.set_field(pair, "first", 99)
        assert pair.first == 99

    def test_new_instance_skips_init(self, accessor):
        created = []

        class Tracked:  # deliberately unregistered: accessors don't care
            def __init__(self):
                created.append(self)

        instance = accessor.new_instance(Tracked)
        assert isinstance(instance, Tracked)
        assert created == []

    def test_new_instance_slots(self, accessor):
        point = accessor.new_instance(SlottedPoint)
        point.x = 1
        assert point.x == 1

    def test_unset_slots_skipped(self, accessor):
        point = SlottedPoint.__new__(SlottedPoint)
        point.x = 3
        assert dict(accessor.get_state(point)) == {"x": 3}

    def test_state_order_stable(self, accessor):
        pair = Pair("a", "b")
        assert [name for name, _ in accessor.get_state(pair)] == ["first", "second"]


class TestPortableChecks:
    def test_dunder_field_rejected(self):
        pair = Pair(1, 2)
        pair.__dict__["__evil__"] = 1
        with pytest.raises(SerializationError):
            PORTABLE_ACCESSOR.get_state(pair)

    def test_invalid_field_name_rejected(self):
        with pytest.raises(SerializationError):
            PORTABLE_ACCESSOR.set_field(Pair(1, 2), "", 1)


class TestOptimizedCaching:
    def test_plan_cached_per_class(self):
        accessor = OptimizedAccessor()
        accessor.get_state(Pair(1, 2))
        plan_first = accessor._plans[Pair]
        accessor.get_state(Pair(3, 4))
        assert accessor._plans[Pair] is plan_first

    def test_bulk_set_clears_stale_fields(self):
        accessor = OptimizedAccessor()
        pair = Pair(1, 2)
        pair.extra = "stale"
        accessor.set_state(pair, [("first", 9)])
        assert pair.first == 9
        assert not hasattr(pair, "extra")


class TestProfiles:
    def test_lookup_by_name(self):
        assert profile_by_name("legacy") is LEGACY_PROFILE
        assert profile_by_name("modern") is MODERN_PROFILE

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            profile_by_name("jdk9")

    def test_accessor_lookup(self):
        assert accessor_by_name("portable") is PORTABLE_ACCESSOR
        assert accessor_by_name("optimized") is OPTIMIZED_ACCESSOR
        with pytest.raises(ValueError):
            accessor_by_name("turbo")

    def test_profile_knobs(self):
        assert LEGACY_PROFILE.per_object_validation
        assert not LEGACY_PROFILE.intern_descriptors
        assert MODERN_PROFILE.intern_descriptors
        assert not MODERN_PROFILE.per_object_validation
