"""Serialization of class instances: markers, slots, registry policy."""

import pytest

from repro.errors import ClassNotRegisteredError, NotSerializableError
from repro.serde.reader import ObjectReader
from repro.serde.registry import ClassRegistry, global_registry, qualified_name
from repro.serde.writer import ObjectWriter
from repro.serde.profiles import LEGACY_PROFILE

from tests.conftest import fresh_class
from tests.model_helpers import Box, Node, Pair, SlottedPoint


def roundtrip(value, profile=None):
    kwargs = {"profile": profile} if profile else {}
    writer = ObjectWriter(**kwargs)
    writer.write_root(value)
    reader = ObjectReader(writer.getvalue(), **kwargs)
    result = reader.read_root()
    reader.expect_end()
    return result


class TestRegisteredClasses:
    def test_simple_object(self):
        result = roundtrip(Pair(1, "two"))
        assert isinstance(result, Pair)
        assert result.first == 1
        assert result.second == "two"

    def test_marker_subclass_auto_registered(self):
        assert global_registry.is_registered(Node)
        assert global_registry.is_registered(Box)

    def test_nested_objects(self):
        result = roundtrip(Box(Pair(Node(1), [Node(2)])))
        assert result.payload.first.data == 1
        assert result.payload.second[0].data == 2

    def test_init_not_called_on_decode(self):
        calls = []

        cls = fresh_class(
            "InitTracking",
            bases=(),
            namespace={"__init__": lambda self: calls.append(1)},
        )
        instance = cls()
        instance.marker = "set-after-init"
        assert calls == [1]
        result = roundtrip(instance)
        assert calls == [1]  # decode must not run __init__
        assert result.marker == "set-after-init"

    def test_dynamic_fields_roundtrip(self):
        box = Box()
        box.extra = "added later"
        result = roundtrip(box)
        assert result.extra == "added later"

    def test_object_with_no_fields(self):
        cls = fresh_class("Empty")
        result = roundtrip(cls())
        assert type(result).__name__ == cls.__name__


class TestSlots:
    def test_slotted_class(self):
        result = roundtrip(SlottedPoint(3, 4))
        assert (result.x, result.y) == (3, 4)

    def test_unset_slot_omitted(self):
        point = SlottedPoint.__new__(SlottedPoint)
        point.x = 1  # y never set
        result = roundtrip(point)
        assert result.x == 1
        assert not hasattr(result, "y")

    def test_slotted_legacy_profile(self):
        result = roundtrip(SlottedPoint(-1, -2), profile=LEGACY_PROFILE)
        assert (result.x, result.y) == (-1, -2)

    def test_mixed_slots_and_dict_hierarchy(self):
        cls = fresh_class("MixedChild", bases=(SlottedPoint,))
        instance = cls.__new__(cls)
        instance.x, instance.y = 1, 2
        instance.label = "dict-side"
        result = roundtrip(instance)
        assert (result.x, result.y, result.label) == (1, 2, "dict-side")


class TestRegistryPolicy:
    def test_unregistered_class_rejected_on_write(self):
        class Unregistered:
            pass

        with pytest.raises(ClassNotRegisteredError):
            roundtrip(Unregistered())

    def test_unknown_class_rejected_on_read(self):
        isolated = ClassRegistry()
        cls = fresh_class("PrivateClass")
        isolated.register(cls, name="only.on.sender")
        writer = ObjectWriter(registry=isolated)
        writer.write_root(cls())
        with pytest.raises(ClassNotRegisteredError):
            ObjectReader(writer.getvalue()).read_root()

    def test_function_not_serializable(self):
        with pytest.raises(NotSerializableError):
            roundtrip([lambda: None])

    def test_class_object_not_serializable(self):
        with pytest.raises(NotSerializableError):
            roundtrip(Node)  # the class, not an instance

    def test_module_not_serializable(self):
        import math

        with pytest.raises(NotSerializableError):
            roundtrip(math)

    def test_register_twice_same_class_ok(self):
        registry = ClassRegistry()
        cls = fresh_class("Twice")
        registry.register(cls, name="t")
        registry.register(cls, name="t")  # idempotent

    def test_register_conflicting_name_rejected(self):
        registry = ClassRegistry()
        a = fresh_class("ConflictA")
        b = fresh_class("ConflictB")
        registry.register(a, name="same")
        with pytest.raises(Exception):
            registry.register(b, name="same")

    def test_qualified_name(self):
        assert qualified_name(Node).endswith("model_helpers.Node")

    def test_isolated_registry_roundtrip(self):
        registry = ClassRegistry()
        cls = fresh_class("Isolated")
        registry.register(cls, name="iso.cls")
        instance = cls()
        instance.v = 11
        writer = ObjectWriter(registry=registry)
        writer.write_root(instance)
        reader = ObjectReader(writer.getvalue(), registry=registry)
        assert reader.read_root().v == 11


class TestDescriptorInterning:
    def test_many_instances_intern_class_descriptor(self):
        nodes = [Node(i) for i in range(100)]
        modern = ObjectWriter()
        modern.write_root(nodes)
        legacy = ObjectWriter(profile=LEGACY_PROFILE)
        legacy.write_root(nodes)
        # Legacy writes the full class + field names per object.
        assert len(modern.getvalue()) < len(legacy.getvalue()) * 0.6

    def test_field_name_interning_across_classes(self):
        payload = [Pair(Node(1), Node(2)) for _ in range(50)]
        writer = ObjectWriter()
        writer.write_root(payload)
        decoded = ObjectReader(writer.getvalue()).read_root()
        assert decoded[49].second.data == 2
