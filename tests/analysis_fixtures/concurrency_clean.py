"""Near-misses for the NRMI04x concurrency family: zero findings.

The twin of ``concurrency_bad.py``: the same thread-role shapes — a
selector net loop, a spawned worker, an SPSC ring, serializable state —
but every sharing is disciplined (common lock, sanctioned atomic, ring
ownership split, publish-before-start, transient primitives).
``# near-miss: CODE`` markers claim the line that skirts each rule; the
meta-test asserts no finding of that code lands there.
"""

import selectors
import threading
from collections import deque


class Serializable:
    """Stands in for repro.core.markers.Serializable (matched by name)."""


class Remote:
    """Stands in for repro.core.markers.Remote (matched by base name)."""


class TidyStagedServer:
    """Cross-role sharing done right: one lock, atomic handoffs."""

    def __init__(self, ring):
        self._selector = selectors.DefaultSelector()
        self._ring = ring
        self._lock = threading.Lock()
        self._mode = "cold"
        self._spin_rounds = 0
        self._conns = {}
        self._inbox = deque()
        self._ready = True  # near-miss: NRMI045
        self._thread = threading.Thread(target=self._worker_loop)
        self._thread.start()

    def _net_loop(self):
        while True:
            events = self._selector.select(0.1)
            for _key, _mask in events:
                with self._lock:
                    self._mode = "hot"  # near-miss: NRMI041
            with self._lock:
                for conn in list(self._conns):
                    conn.flush()
            while self._inbox:
                self._inbox.popleft()

    def _worker_loop(self):
        while self._ready:
            with self._lock:
                if self._mode != "hot":
                    continue
                self._spin_rounds += 1  # near-miss: NRMI042
                self._conns.pop("stale", None)  # near-miss: NRMI044
            self._inbox.append("job")  # near-miss: NRMI042

    def audited_reset(self):
        # The alias shape RLock callers use for re-entrant sections: the
        # guard matcher must treat `with lock:` as `with self._lock:`.
        lock = self._lock
        with lock:
            self._mode = "cold"  # near-miss: NRMI031


class SplitDuplex:
    """SPSC ownership respected: net produces tx, worker consumes rx."""

    def __init__(self, tx_ring, rx_ring):
        self._selector = selectors.DefaultSelector()
        self._tx = tx_ring
        self._rx = rx_ring
        self._pump = threading.Thread(target=self._pump_loop)
        self._pump.start()

    def _net_loop(self):
        while True:
            events = self._selector.select(0)
            for key, _mask in events:
                self._tx.try_write(key.data)  # near-miss: NRMI043

    def _pump_loop(self, buffer=b""):
        self._rx.try_read_into(bytearray(64))


class TidyHandle(Serializable):
    """Primitives stay transient even when they flow through aliases."""

    __nrmi_transient__ = ("_guard", "_hook")

    def __init__(self):
        guard = threading.Lock()
        self._guard = guard  # near-miss: NRMI046
        self._hook = lambda: None  # noqa: E731
        self.path = "/tmp/handle"


class ReportService(Remote):
    """Replies carry plain data; closures that cross capture no locks."""

    def __init__(self):
        self._lock = threading.Lock()
        self._rows = {}

    def snapshot(self):
        with self._lock:
            return dict(self._rows)

    def formatter(self):
        def render(value):
            return str(value)

        return render  # near-miss: NRMI046
