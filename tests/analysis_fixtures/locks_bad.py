"""Seeded lock-discipline violation (NRMI031).

Parsed by the analyzer, never imported; ``# expect: CODE`` markers pin
the expected findings to exact lines.
"""

import threading


class StatCell:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self.peak = 0

    def bump(self, amount):
        with self._lock:
            self.count += amount
            if self.count > self.peak:
                self.peak = self.count

    def reset(self):
        self.count = 0  # expect: NRMI031

    def snapshot(self):
        with self._lock:
            return {"count": self.count, "peak": self.peak}


class SingleThreaded:
    """Guarded and bare writes, but the bare one carries a justified
    suppression — it must land in the suppressed list, not the findings."""

    def __init__(self):
        self._lock = threading.RLock()
        self.cursor = 0

    def advance(self):
        with self._lock:
            self.cursor += 1

    def rewind(self):
        self.cursor = 0  # nrmi: disable=NRMI031 -- only called from __init__-time setup, pre-sharing
