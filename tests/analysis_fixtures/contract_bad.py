"""Seeded contract-rule violations (NRMI001–NRMI004, NRMI023).

Each ``# expect: CODE`` marker names the finding and the exact line the
analyzer must anchor it to; tests parse these markers and compare them
to the real findings. This module is lint bait — it is parsed, never
imported.
"""

from functools import partial


class Remote:
    """Stands in for repro.core.markers.Remote (matched by base name)."""


class EmptyContract:  # expect: NRMI001
    """A remote interface with nothing to call."""


class OrdersContract:
    def place(self, order): ...

    def cancel(self, order_id, reason): ...


class ShippingContract:  # expect: NRMI003
    def track(self, parcel): ...

    def cancel(self, shipment): ...


class OrdersService(Remote):
    def place(self, order, priority):  # expect: NRMI002
        return order, priority


class ShippingService(Remote):
    def track(self, parcel):
        return parcel

    def cancel(self, shipment):
        return shipment


class AdminContract:
    def reset(self): ...

    class Helper:  # expect: NRMI004
        pass

    refresh = partial(print, "refresh")  # expect: NRMI004


class BatchContract:
    def submit(self, jobs=[]): ...  # expect: NRMI023


def wire(endpoint):
    endpoint.bind("orders", OrdersService(), interface=OrdersContract)  # expect: NRMI002
    endpoint.bind("shipping", ShippingService(), interface=ShippingContract)
    endpoint.bind("admin", ShippingService(), interface=AdminContract)  # expect: NRMI002
    endpoint.bind("batch", ShippingService(), interface=BatchContract)  # expect: NRMI002
    endpoint.bind("empty", OrdersService(), interface=EmptyContract)
