"""Seeded serializability violations (NRMI011–NRMI014, NRMI033).

Parsed by the analyzer, never imported; ``# expect: CODE`` markers pin
the expected findings to exact lines.
"""

import hashlib
import threading


class Serializable:
    """Stands in for repro.core.markers.Serializable (matched by name)."""


class Restorable(Serializable):
    """Stands in for repro.core.markers.Restorable (matched by name)."""


class Session(Serializable):
    def __init__(self, path):
        self.lock = threading.Lock()  # expect: NRMI011
        self.parse = lambda s: s.split()  # expect: NRMI011
        self.log = open(path, "a")  # expect: NRMI011
        self.path = path


class Spooky(Serializable):
    def __getattr__(self, name):  # expect: NRMI012
        return 0


class WobblySlots(Serializable):
    __slots__ = tuple("ab")  # expect: NRMI012


class Node(Restorable):
    def __init__(self, key):
        self.key = key

    def __eq__(self, other):  # expect: NRMI013
        return isinstance(other, Node) and other.key == self.key

    def __hash__(self):  # expect: NRMI013
        return hash(self.key)


def table_digest(mapping):
    digest = hashlib.sha256()
    for key in mapping.keys():  # expect: NRMI014
        digest.update(str(key).encode())
    members = {str(item) for item in sorted(mapping)}
    digest.update(b"|".join(sorted(x.encode() for x in members)))
    return digest.hexdigest()


def tag_digest(tags):
    digest = hashlib.sha256()
    for tag in set(tags):  # expect: NRMI014
        digest.update(tag)
    return digest.digest()


class Evolved(Serializable):
    def __nrmi_upgrade__(self, wire_version):  # expect: NRMI033
        self.migrated = True


class BadVersion(Serializable):
    __nrmi_version__ = "2"  # expect: NRMI033
