"""A violation-free module packed with near-misses.

Every pattern here skirts the edge of a rule without crossing it; the
analyzer must report zero findings. Parsed, never imported.
"""

import hashlib
import threading


class Serializable:
    """Stands in for repro.core.markers.Serializable (matched by name)."""


class Restorable(Serializable):
    """Stands in for repro.core.markers.Restorable (matched by name)."""


class Remote:
    """Stands in for repro.core.markers.Remote (matched by base name)."""


def no_restore(fn):
    return fn


def restore_policy(name):
    def decorate(fn):
        return fn

    return decorate


class Session(Serializable):
    """Transient code-like fields are fine: they never hit the wire."""

    __nrmi_transient__ = ("lock", "log")

    def __init__(self, path):
        self.lock = threading.Lock()  # near-miss: NRMI011
        self.log = open(path, "a")
        self.path = path

    def __nrmi_resolve__(self):
        self.lock = threading.Lock()
        self.log = open(self.path, "a")


class TidySlots(Serializable):
    __slots__ = ("left", "right")  # near-miss: NRMI012

    def __init__(self):
        self.left = None
        self.right = None


class Versioned(Serializable):
    __nrmi_version__ = 2  # near-miss: NRMI033

    def __nrmi_upgrade__(self, wire_version):
        if wire_version < 2:
            self.extra = None


class ValueKey(Serializable):
    """Value equality on a by-copy type: identity matching only governs
    Restorable (copy-restore) classes, so this must not be flagged."""

    def __init__(self, path):
        self.path = path

    def __eq__(self, other):  # near-miss: NRMI013
        return isinstance(other, ValueKey) and other.path == self.path

    def __hash__(self):
        return hash(self.path)


class StoreContract:  # near-miss: NRMI001, NRMI003
    def put(self, record): ...

    def get(self, key): ...


class StoreService(Remote):  # near-miss: NRMI004
    def __init__(self):
        self._lock = threading.Lock()
        self._rows = {}

    def put(self, record):
        with self._lock:
            self._rows[record.key] = record.value  # near-miss: NRMI022, NRMI031
        return record.key

    def get(self, key, default=None):  # near-miss: NRMI023
        with self._lock:
            return self._rows.get(key, default)

    @no_restore
    def count(self, table):
        return len(table.rows)  # near-miss: NRMI021

    @restore_policy("delta")
    def touch(self, table):
        table.rows[0]["seen"] = True
        return 1


def stable_digest(mapping):
    digest = hashlib.sha256()
    for key in sorted(mapping.keys()):  # near-miss: NRMI014
        digest.update(str(key).encode())
        digest.update(str(mapping[key]).encode())
    return digest.hexdigest()


def unordered_listing(mapping):
    # Unordered iteration is fine outside digest-feeding functions.
    return [key for key in mapping.keys()]


def wire(endpoint):
    endpoint.bind("store", StoreService(), interface=StoreContract)  # near-miss: NRMI002
