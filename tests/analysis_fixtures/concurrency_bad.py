"""Seeded cross-thread races for the NRMI04x concurrency family.

Parsed by the analyzer, never imported; ``# expect: CODE`` markers pin
the expected findings to exact lines. Each class isolates one rule:
roles come from the same inference the real staged server gets —
``_net_loop`` calls ``selector.select`` (net-loop role), ``__init__``
spawns ``Thread(target=...)`` (worker role), remaining public methods
default to client-caller.
"""

import selectors
import threading


class Serializable:
    """Stands in for repro.core.markers.Serializable (matched by name)."""


class Remote:
    """Stands in for repro.core.markers.Remote (matched by base name)."""


class RacyStagedServer:
    """041/042/044/045 baits: one field per rule, no shared locks."""

    def __init__(self, ring):
        self._selector = selectors.DefaultSelector()
        self._ring = ring
        self._mode = "cold"
        self._spin_rounds = 0
        self._started = False
        self._conns = {}
        self._thread = threading.Thread(target=self._worker_loop)
        self._thread.start()
        self._ready = True  # expect: NRMI045

    def _net_loop(self):
        while True:
            events = self._selector.select(0.1)
            for _key, _mask in events:
                self._mode = "hot"  # expect: NRMI041
            for conn in self._conns:
                conn.flush()
            if self._started:
                self._dispatch()

    def _dispatch(self):
        self._spin_rounds += 1  # expect: NRMI042

    def _worker_loop(self):
        while self._ready:
            if self._mode == "hot":
                self._conns.pop("stale", None)  # expect: NRMI044
            if not self._started:
                self._started = True  # expect: NRMI042
            if self._spin_rounds > 1000:
                return


class DualProducerBridge:
    """043-A bait: ``try_write`` reachable from net-loop AND worker."""

    def __init__(self, ring):
        self._selector = selectors.DefaultSelector()
        self._ring = ring
        self._pump = threading.Thread(target=self._pump_loop)
        self._pump.start()

    def _net_loop(self):
        while True:
            events = self._selector.select(0)
            for key, _mask in events:
                self._ring.try_write(key.data)

    def _pump_loop(self):
        self._ring.try_write(b"heartbeat")  # expect: NRMI043


class ConfusedDuplex:
    """043-C bait: one role consumes the ring it also produces."""

    def __init__(self, ring):
        self._ring = ring

    def exchange(self, payload, buffer):
        self._ring.try_write(payload)
        return self._ring.try_read_into(buffer)  # expect: NRMI043


class HandleWithLock(Serializable):
    """046 baits: primitives flowing into serialized state via aliases
    and closures — the shapes NRMI011's constructor match cannot see."""

    __nrmi_transient__ = ("_lock",)

    def __init__(self):
        self._lock = threading.Lock()
        guard = threading.Lock()
        self.guard_field = guard  # expect: NRMI046
        notify = lambda: self._lock.acquire()  # noqa: E731
        self.callback = notify  # expect: NRMI046


class CallbackService(Remote):
    """046 bait: a Remote reply is serialized too — returning a closure
    over a lock ships the lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0

    def subscribe(self):
        def waiter():
            with self._lock:
                return self._hits

        return waiter  # expect: NRMI046
