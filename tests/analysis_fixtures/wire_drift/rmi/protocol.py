"""A deliberately drifted copy of the protocol constants (NRMI032 bait).

The analyzer's protocol-invariant rule checks this tree against its own
``transport/framing.py`` / ``serde/*`` siblings, independent of the real
sources. Parsed, never imported.
"""

from enum import IntEnum


class Op(IntEnum):  # expect: NRMI032
    CALL = 1
    FIELD_GET = 2
    FIELD_SET = 2
    PING = 5


class Status(IntEnum):
    OK = 0
    EXCEPTION = 1
    PROTOCOL_ERROR = 2


_POLICY_TO_ID = {"none": 0, "full": 1, "delta": 1, "dce": 3}  # expect: NRMI032

_MODE_TO_ID = {"by_value": 0, "by_copy": 1, "by_ref": 2}

_FLAG_SHIP_MAP = 0x01

CAP_DELTA_SLOTS = 0x01  # expect: NRMI032

CAP_STREAMING = 0x06  # expect: NRMI032
