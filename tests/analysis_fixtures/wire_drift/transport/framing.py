"""Drifted framing constants for the NRMI032 fixture tree."""

MAX_FRAME_BYTES = 256 * 1024 * 1024

PIPELINE_MAGIC = b"\x00\x00\x10\x00"  # expect: NRMI032

PIPELINE_VERSION = b"PIP1"

PIPELINE_PREAMBLE = b"NRMIPIP1"  # expect: NRMI032
