"""Codegen tag mirrors that drifted from tags.py (NRMI032 bait).

The codegen module interpolates *both* literal sets into generated
source — ``_TAG_*`` into encoders, ``_T_*`` into decoders — so the rule
cross-checks both prefixes against the canonical Tag enum. One drifted
value and one unknown name per prefix. Parsed, never imported.
"""

_TAG_NONE = 0x00
_TAG_INT = 0x04  # expect: NRMI032
_TAG_GLYPH = 0x0C  # expect: NRMI032
_TAG_OBJECT = 0x10

_T_NONE = 0x00
_T_TRUE = 0x02  # expect: NRMI032
_T_GLYPH = 0x0C  # expect: NRMI032
_T_OBJECT = 0x10
