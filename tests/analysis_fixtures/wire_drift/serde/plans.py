"""Inlined tag bytes that drifted from tags.py (NRMI032 bait)."""

_TAG_NONE = 0x00  # near-miss: NRMI032
_TAG_TRUE = 0x01
_TAG_STR = 0x06  # expect: NRMI032
_TAG_BLOB = 0x08  # expect: NRMI032
_TAG_OBJECT = 0x10
