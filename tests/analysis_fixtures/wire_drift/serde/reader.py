"""Inlined reader tag bytes that drifted from tags.py (NRMI032 bait)."""

_T_NONE = 0x00
_T_FLOAT = 0x04  # expect: NRMI032
_T_BLOB = 0x08  # expect: NRMI032
_T_OBJECT = 0x10
