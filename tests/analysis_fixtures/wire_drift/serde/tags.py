"""Canonical tag bytes for the NRMI032 fixture tree."""

from enum import IntEnum


class Tag(IntEnum):
    NONE = 0x00
    TRUE = 0x01
    FALSE = 0x02
    INT = 0x03
    FLOAT = 0x05
    STR = 0x07
    OBJECT = 0x10
