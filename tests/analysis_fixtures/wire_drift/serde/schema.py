"""Deliberately broken schema-cache constants (NRMI032 bait).

Every invariant of the schema-mode class-key encoding is violated once:
the inline discriminator moved off 0, the def/ref discriminators collide,
the stream back-reference base overlaps a discriminator, and the header
flag is not a single bit. Parsed, never imported.
"""

STREAM_FLAG_SCHEMA_CACHE = 0x03  # expect: NRMI032

CKEY_INLINE = 1  # expect: NRMI032
CKEY_SCHEMA_DEF = 1  # expect: NRMI032
CKEY_SCHEMA_REF = 2
CKEY_STREAM_BASE = 2  # expect: NRMI032

MAX_SCHEMA_ID = 0xFFFF
