"""Seeded borrowed-view escapes (NRMI036).

Parsed by the analyzer, never imported; ``# expect: CODE`` markers pin
the expected findings to exact lines. The class mimics the shapes the
zero-copy shm path deals in: ``peek_record``/``reserve`` hand out
memoryviews over mapped ring memory that die at ``consume``/``commit``.
Storing one on ``self``, returning one, or touching one after the
release are the seeded bugs. Copying with ``bytes(view)`` before the
borrow ends is the sanctioned idiom and must NOT be flagged.
"""


class BadBorrower:
    def __init__(self, rx, tx):
        self._rx = rx
        self._tx = tx
        self._stash = None

    def cache_view(self):
        view = self._rx.peek_record()
        self._stash = view  # expect: NRMI036
        self._rx.consume()

    def leak_slice(self):
        record = self._rx.peek_record()
        self._stash = record[4:]  # expect: NRMI036
        self._rx.consume()

    def hand_out(self):
        view = self._rx.peek_record()
        return view  # expect: NRMI036

    def hand_out_directly(self):
        return self._rx.peek_record()  # expect: NRMI036

    def use_after_consume(self):
        view = self._rx.peek_record()
        self._rx.consume()
        return bytes(view)  # expect: NRMI036

    def write_after_commit(self):
        span = self._tx.reserve(64)
        span[:5] = b"hello"
        self._tx.commit(5)
        total = len(span)  # expect: NRMI036
        return total

    def copy_before_release(self):
        # The sanctioned idiom: snapshot while the borrow is live, then
        # release; only the copy survives. Must NOT be flagged.
        view = self._rx.peek_record()
        data = bytes(view)
        self._rx.consume()
        return data  # near-miss: NRMI036

    def store_a_copy(self):
        view = self._rx.peek_record()
        self._stash = bytes(view)  # near-miss: NRMI036
        self._rx.consume()

    def fallback_branch_does_not_poison(self):
        # A branch that releases and immediately bails (the copy-path
        # fallback) must not poison the straight-line continuation.
        record = self._rx.peek_record()
        if len(record) < 4:
            self._rx.consume(0)
            return None
        first = record[0]  # near-miss: NRMI036
        self._rx.consume()
        return first
