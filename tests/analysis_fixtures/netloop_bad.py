"""Seeded net-loop blocking hazards (NRMI034).

Parsed by the analyzer, never imported; ``# expect: CODE`` markers pin
the expected findings to exact lines. The class mimics the staged
server's shape: ``_loop`` calls ``selector.select()``, so everything it
reaches via ``self.<method>()`` runs on the net thread and must stay
non-blocking. The worker loop is spawned as a thread target, never
called, so its (legitimate) blocking calls are exempt.
"""

import selectors
import threading
import time


def call_handler(handler, request, session):
    return handler(request, session)


def read_frame(sock):
    return b""


class BadNetLoop:
    def __init__(self, handler, jobs_queue):
        self._handler = handler
        self._jobs_queue = jobs_queue
        self._selector = selectors.DefaultSelector()
        self._worker = threading.Thread(target=self._worker_loop)

    def _loop(self):
        while True:
            events = self._selector.select(0.1)
            for key, _mask in events:
                self._on_ready(key.fileobj)
            self._tick()

    def _on_ready(self, sock):
        request = read_frame(sock)  # expect: NRMI034
        response = call_handler(self._handler, request, None)  # expect: NRMI034
        self._jobs_queue.put(response)  # expect: NRMI034
        self._drain_inline(sock)

    def _drain_inline(self, sock):
        time.sleep(0.01)  # expect: NRMI034
        return self._jobs_queue.get()  # expect: NRMI034

    def _tick(self):
        # Non-blocking queue admission is the allowed pattern.
        self._jobs_queue.try_push(b"")  # near-miss: NRMI034

    def _worker_loop(self):
        # Runs on a worker thread (spawned, never self-called): blocking
        # here is correct and must NOT be flagged.
        while True:
            job = self._jobs_queue.get()
            if job is None:
                return
            call_handler(self._handler, job, None)
