"""Seeded copy-restore hazards (NRMI021–NRMI023).

Parsed by the analyzer, never imported; ``# expect: CODE`` markers pin
the expected findings to exact lines.
"""


class Remote:
    """Stands in for repro.core.markers.Remote (matched by base name)."""


def no_restore(fn):
    return fn


def restore_policy(name):
    def decorate(fn):
        return fn

    return decorate


_AUDIT_LOG = []


class Ledger(Remote):
    @no_restore
    def credit(self, account, amount):
        account.balance += amount  # expect: NRMI021
        account.history.append(amount)  # expect: NRMI021
        return account.balance

    @restore_policy("none")
    def flag_rows(self, table, threshold):
        flagged = 0
        for row in table.rows:
            if row["value"] > threshold:
                row["flag"] = True  # expect: NRMI021
                flagged += 1
        return flagged

    @restore_policy("delta")
    def reprice(self, table, factor):
        # Mutating under a restoring policy is the intended pattern.
        for row in table.rows:
            row["value"] *= factor
        return len(table.rows)

    def audit(self, record):
        _AUDIT_LOG.append(record)  # expect: NRMI022
        return len(_AUDIT_LOG)

    def stash(self, secret):
        global _LAST_SECRET
        _LAST_SECRET = secret  # expect: NRMI022
        return True

    def window(self, rows, limits={}):  # expect: NRMI023
        return [r for r in rows if r in limits]
