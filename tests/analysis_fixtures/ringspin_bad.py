"""Seeded ring spin-path blocking hazards (NRMI035).

Parsed by the analyzer, never imported; ``# expect: CODE`` markers pin
the expected findings to exact lines. The class mimics the shm duplex's
shape: methods that loop re-probing a ring (``try_read_into`` /
``try_write``) are spin waits, so everything they reach via
``self.<method>()`` must stay non-blocking. Parking on the doorbell via
``select.select`` after declaring intent is the sanctioned slow path and
must NOT be flagged; neither may a thread-target method that legally
blocks, since it is spawned rather than self-called.
"""

import select
import threading
import time


def read_frame(sock):
    return b""


class BadRingDuplex:
    def __init__(self, rx, tx, doorbell, jobs_queue):
        self._rx = rx
        self._tx = tx
        self._sock = doorbell
        self._jobs_queue = jobs_queue
        self._pump = threading.Thread(target=self._pump_loop)

    def recv_into(self, buffer):
        while True:
            got = self._rx.try_read_into(buffer)
            if got:
                return got
            time.sleep(0.001)  # expect: NRMI035

    def sendall(self, data):
        view = memoryview(data)
        sent = 0
        while sent < len(view):
            wrote = self._tx.try_write(view[sent:])
            if wrote:
                sent += wrote
                continue
            self._wait_for_space()

    def _wait_for_space(self):
        # Reached only from the sendall spin loop: its blocking waits
        # are spin-path findings even though it has no loop itself.
        self._jobs_queue.get()  # expect: NRMI035
        self._drained.wait()  # expect: NRMI035
        read_frame(self._sock)  # expect: NRMI035

    def _park(self, timeout):
        # The sanctioned slow path: declare intent, then sleep on the
        # doorbell fd in select. Must NOT be flagged.
        self._rx.set_waiting()
        if not self._rx.readable():
            select.select([self._sock], [], [], timeout)  # near-miss: NRMI035
        self._rx.clear_waiting()

    def _pump_loop(self):
        # Runs on a spawned thread, never self-called from a spin path:
        # blocking here is legitimate and must NOT be flagged.
        while True:
            job = self._jobs_queue.get()
            if job is None:
                return
            time.sleep(0.01)
