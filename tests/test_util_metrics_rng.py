"""Counters, metrics registry, and deterministic RNG."""

import threading

from repro.util.metrics import Counter, Distribution, MetricsRegistry
from repro.util.rng import DeterministicRandom


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_add_default_one(self):
        c = Counter("c")
        c.add()
        assert c.value == 1

    def test_add_amount(self):
        c = Counter("c")
        c.add(5)
        c.add(7)
        assert c.value == 12

    def test_reset(self):
        c = Counter("c")
        c.add(3)
        c.reset()
        assert c.value == 0

    def test_thread_safety(self):
        c = Counter("c")

        def worker():
            for _ in range(10_000):
                c.add()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000


class TestDistribution:
    def test_empty_summary(self):
        dist = Distribution("d")
        assert dist.count == 0
        assert dist.mean == 0.0

    def test_records_summarize(self):
        dist = Distribution("d")
        for value in (0.25, 0.75, 0.5):
            dist.record(value)
        assert dist.count == 3
        assert dist.total == 1.5
        assert dist.min == 0.25
        assert dist.max == 0.75
        assert dist.mean == 0.5

    def test_reset(self):
        dist = Distribution("d")
        dist.record(3.0)
        dist.reset()
        assert dist.count == 0
        assert dist.mean == 0.0

    def test_thread_safety(self):
        dist = Distribution("d")

        def worker():
            for _ in range(5_000):
                dist.record(1.0)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert dist.count == 20_000
        assert dist.total == 20_000.0


class TestMetricsRegistry:
    def test_counter_created_on_first_use(self):
        registry = MetricsRegistry()
        registry.counter("x").add(2)
        assert registry.snapshot() == {"x": 2}

    def test_same_counter_returned(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_reset_all(self):
        registry = MetricsRegistry()
        registry.counter("a").add(1)
        registry.counter("b").add(2)
        registry.reset_all()
        assert registry.snapshot() == {"a": 0, "b": 0}

    def test_iteration(self):
        registry = MetricsRegistry()
        registry.counter("k").add(9)
        assert dict(registry) == {"k": 9}

    def test_distribution_created_on_first_use(self):
        registry = MetricsRegistry()
        assert registry.distribution("d") is registry.distribution("d")
        registry.distribution("d").record(0.5)
        assert registry.distribution("d").count == 1
        # Distributions are not flattened into the scalar snapshot.
        assert "d" not in registry.snapshot()

    def test_reset_all_covers_distributions(self):
        registry = MetricsRegistry()
        registry.distribution("d").record(2.0)
        registry.reset_all()
        assert registry.distribution("d").count == 0


class TestDeterministicRandom:
    def test_same_seed_same_stream(self):
        a = DeterministicRandom(99)
        b = DeterministicRandom(99)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a = [DeterministicRandom(1).randint(0, 10**9) for _ in range(5)]
        b = [DeterministicRandom(2).randint(0, 10**9) for _ in range(5)]
        assert a != b

    def test_fork_is_stable(self):
        a = DeterministicRandom(7).fork("child")
        b = DeterministicRandom(7).fork("child")
        assert a.randint(0, 10**9) == b.randint(0, 10**9)

    def test_fork_labels_independent(self):
        base = DeterministicRandom(7)
        assert base.fork("x").seed != base.fork("y").seed

    def test_chance_bounds(self):
        rng = DeterministicRandom(3)
        assert not any(rng.chance(0.0) for _ in range(100))
        rng = DeterministicRandom(3)
        assert all(rng.chance(1.1) for _ in range(100))

    def test_choice_and_sample(self):
        rng = DeterministicRandom(5)
        seq = list(range(10))
        assert rng.choice(seq) in seq
        sample = rng.sample(seq, 4)
        assert len(sample) == 4
        assert len(set(sample)) == 4

    def test_sample_clamps_to_population(self):
        rng = DeterministicRandom(5)
        assert sorted(rng.sample([1, 2, 3], 10)) == [1, 2, 3]

    def test_shuffle_is_permutation(self):
        rng = DeterministicRandom(5)
        seq = list(range(8))
        rng.shuffle(seq)
        assert sorted(seq) == list(range(8))
