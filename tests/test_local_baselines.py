"""The local-execution baselines (repro.core.local)."""

import pytest

from repro.core.local import call_by_copy_local, call_local, copy_graph
from repro.serde.profiles import LEGACY_PROFILE

from tests.model_helpers import Box, Node, heap_fingerprint


class TestCallLocal:
    def test_plain_invocation(self):
        def double(x):
            return x * 2

        assert call_local(double, 21) == 42

    def test_mutations_visible(self):
        def mutate(box):
            box.payload = "changed"

        box = Box("original")
        call_local(mutate, box)
        assert box.payload == "changed"


class TestCopyGraph:
    def test_deep_copy_structure(self):
        shared = Node("s")
        original = Box([shared, shared])
        copy = copy_graph(original)
        assert copy is not original
        assert copy.payload[0] is copy.payload[1]
        assert copy.payload[0] is not shared
        assert heap_fingerprint([original]) == heap_fingerprint([copy])

    def test_copy_with_legacy_profile(self):
        copy = copy_graph(Box({"k": (1, 2)}), profile=LEGACY_PROFILE)
        assert copy.payload == {"k": (1, 2)}

    def test_copy_of_cycle(self):
        node = Node("loop")
        node.next = node
        copy = copy_graph(node)
        assert copy.next is copy

    def test_copy_primitives_pass_through(self):
        assert copy_graph(42) == 42
        assert copy_graph("text") == "text"


class TestCallByCopyLocal:
    def test_mutations_dropped(self):
        def mutate(box):
            box.payload = "server-side"
            return box.payload

        box = Box("original")
        result = call_by_copy_local(mutate, (box,))
        assert result == "server-side"
        assert box.payload == "original"

    def test_shared_args_share_in_the_copy(self):
        def check(a, b):
            return a is b

        node = Node("one")
        assert call_by_copy_local(check, (node, node)) is True

    def test_distinct_args_stay_distinct(self):
        def check(a, b):
            return a is b

        assert call_by_copy_local(check, (Node("x"), Node("x"))) is False

    def test_multiple_args_in_order(self):
        def combine(a, b, c):
            return f"{a}-{b}-{c}"

        assert call_by_copy_local(combine, (1, 2, 3)) == "1-2-3"
