"""The restore engine (steps 5-6) at unit level.

These tests drive RestoreEngine directly with hand-built original/modified
pairs, checking in-place overwrite, pointer conversion, new-object
adoption, immutable rebuilding, and the hashed-container ordering rules.
"""

import pytest

from repro.core.copy_restore import RestoreEngine
from repro.core.matching import match_maps
from repro.serde.accessors import PORTABLE_ACCESSOR
from repro.util.identity import IdentitySet

from tests.model_helpers import Box, Node, Pair


def restore(originals, modifieds, result=None, engine=None, skip=None):
    engine = engine or RestoreEngine()
    match = match_maps(originals, modifieds)
    return engine.restore(match, result, skip=skip)


class TestObjectOverwrite:
    def test_field_value_overwritten_in_place(self):
        original, modified = Node(1), Node(99)
        restore([original], [modified])
        assert original.data == 99

    def test_identity_of_original_preserved(self):
        original, modified = Node(1), Node(2)
        alias = original
        restore([original], [modified])
        assert alias is original
        assert alias.data == 2

    def test_pointer_to_old_object_converted(self):
        orig_a, orig_b = Node("a"), Node("b")
        mod_a, mod_b = Node("a"), Node("b")
        mod_a.next = mod_b  # server linked a to b
        restore([orig_a, orig_b], [mod_a, mod_b])
        assert orig_a.next is orig_b  # NOT mod_b

    def test_new_field_added(self):
        original = Box(1)
        modified = Box(1)
        modified.added = "new"
        restore([original], [modified])
        assert original.added == "new"

    def test_stale_field_removed(self):
        original = Box(1)
        original.stale = "old"
        modified = Box(2)
        restore([original], [modified])
        assert not hasattr(original, "stale")
        assert original.payload == 2

    def test_stats_count_old_and_new(self):
        orig = Node(1)
        mod = Node(2, next=Node("fresh"))
        _result, stats = restore([orig], [mod])
        assert stats.old_overwritten == 1
        assert stats.new_adopted == 1


class TestNewObjects:
    def test_new_object_adopted_with_converted_pointers(self):
        orig = Node("old")
        mod = Node("old-changed")
        fresh = Node("fresh", next=mod)  # new node points at modified old
        result, _stats = restore([orig], [mod], result=fresh)
        assert result is fresh
        assert fresh.next is orig  # converted to the original

    def test_chain_of_new_objects(self):
        orig = Node(0)
        mod = Node(0)
        chain = Node(1, Node(2, Node(3, mod)))
        result, _ = restore([orig], [mod], result=chain)
        assert result.next.next.next is orig

    def test_result_that_is_modified_old_becomes_original(self):
        orig, mod = Node(1), Node(2)
        result, _ = restore([orig], [mod], result=mod)
        assert result is orig


class TestContainers:
    def test_list_overwritten_in_place(self):
        original, modified = [1, 2, 3], [9, 8]
        restore([original], [modified])
        assert original == [9, 8]

    def test_list_pointer_conversion(self):
        orig_node, mod_node = Node(1), Node(2)
        original, modified = [], [mod_node]
        restore([original, orig_node], [modified, mod_node])
        assert original[0] is orig_node

    def test_dict_rebuilt(self):
        original = {"a": 1}
        modified = {"b": 2, "c": 3}
        restore([original], [modified])
        assert original == {"b": 2, "c": 3}

    def test_dict_object_keys_converted(self):
        orig_key, mod_key = Node("k"), Node("k")
        original, modified = {orig_key: 1}, {mod_key: 2}
        restore([original, orig_key], [modified, mod_key])
        assert original[orig_key] == 2
        assert len(original) == 1

    def test_set_rebuilt_with_converted_members(self):
        orig_member, mod_member = Node("m"), Node("m")
        original, modified = set(), {mod_member}
        restore([original, orig_member], [modified, mod_member])
        assert orig_member in original

    def test_bytearray_overwritten(self):
        original = bytearray(b"old")
        modified = bytearray(b"newer")
        restore([original], [modified])
        assert original == bytearray(b"newer")

    def test_value_hashed_key_rehashed_after_overwrite(self):
        """Keys are inserted after field overwrites, so hashes are final."""

        class ValueHashed(Box):
            def __hash__(self):
                return hash(self.payload)

            def __eq__(self, other):
                return isinstance(other, ValueHashed) and self.payload == other.payload

        orig_key = ValueHashed("k1")
        mod_key = ValueHashed("k2")  # server changed the key's payload
        original_dict = {}
        modified_dict = {mod_key: "v"}
        restore([original_dict, orig_key], [modified_dict, mod_key])
        assert orig_key.payload == "k2"
        assert original_dict[orig_key] == "v"  # findable under the NEW hash


class TestImmutables:
    def test_tuple_rebuilt_with_converted_refs(self):
        orig, mod = Node(1), Node(2)
        original_box, modified_box = Box(None), Box((mod, "tag"))
        restore([original_box, orig], [modified_box, mod])
        assert original_box.payload[0] is orig
        assert original_box.payload[1] == "tag"

    def test_nested_tuples_converted(self):
        orig, mod = Node(1), Node(2)
        original_box, modified_box = Box(None), Box(((mod,), (mod,)))
        restore([original_box, orig], [modified_box, mod])
        assert original_box.payload[0][0] is orig
        assert original_box.payload[1][0] is orig

    def test_shared_tuple_rebuilt_once(self):
        orig, mod = Node(1), Node(2)
        shared = (mod,)
        original_box, modified_box = Box(None), Box([shared, shared])
        restore([original_box, orig], [modified_box, mod])
        assert original_box.payload[0] is original_box.payload[1]

    def test_frozenset_rebuilt(self):
        original_box, modified_box = Box(None), Box(frozenset({1, 2}))
        restore([original_box], [modified_box])
        assert original_box.payload == frozenset({1, 2})

    def test_stats_count_rebuilds(self):
        orig, mod = Node(1), Node(2)
        _result, stats = restore(
            [Box(None), orig], [Box((mod,)), mod]
        )
        assert stats.immutables_rebuilt == 1


class TestCyclesAndAliasing:
    def test_cycle_in_modified_graph(self):
        orig_a, orig_b = Node("a"), Node("b")
        mod_a, mod_b = Node("a'"), Node("b'")
        mod_a.next = mod_b
        mod_b.next = mod_a
        restore([orig_a, orig_b], [mod_a, mod_b])
        assert orig_a.next is orig_b
        assert orig_b.next is orig_a

    def test_self_loop_created_by_server(self):
        orig, mod = Node(1), Node(1)
        mod.next = mod
        restore([orig], [mod])
        assert orig.next is orig

    def test_unreachable_old_object_still_restored(self):
        """The alias1/alias2 property: detached data must be updated."""
        orig_root, orig_detached = Node("root"), Node("d")
        orig_root.next = orig_detached
        mod_root, mod_detached = Node("root'"), Node("d-changed")
        mod_root.next = None  # server detached it...
        # ...but the linear map retains it, so it still arrives.
        restore([orig_root, orig_detached], [mod_root, mod_detached])
        assert orig_root.next is None
        assert orig_detached.data == "d-changed"


class TestSkipAndOpaque:
    def test_skip_objects_not_descended(self):
        orig, mod = Node(1), Node(2)
        untouchable = Box("keep")
        mod.next = untouchable
        skip = IdentitySet([untouchable])
        restore([orig], [mod], skip=skip)
        assert orig.next is untouchable
        assert untouchable.payload == "keep"

    def test_opaque_predicate_blocks_rewrite(self):
        class Opaque(Box):
            pass

        engine = RestoreEngine(opaque=lambda o: isinstance(o, Opaque))
        orig, mod = Node(1), Node(2)
        sentinel = Opaque("s")
        mod.next = sentinel
        restore([orig], [mod], engine=engine)
        assert orig.next is sentinel
        assert sentinel.payload == "s"


class TestEngineAccessors:
    def test_portable_engine_equivalent(self):
        engine = RestoreEngine(accessor=PORTABLE_ACCESSOR)
        orig, mod = Node(1), Node(2, next=Node("new"))
        restore([orig], [mod], engine=engine)
        assert orig.data == 2
        assert orig.next.data == "new"
