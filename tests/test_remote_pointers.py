"""Remote pointers: the naive call-by-reference baseline (Figure 3, Table 6)."""

import pytest

from repro.core.markers import Remote
from repro.errors import DistributedLeakError, RemoteInvocationError
from repro.nrmi.config import NRMIConfig
from repro.rmi.remote_ref import RemotePointer

from tests.model_helpers import Node


class PointerService(Remote):
    def read_data(self, pointer):
        return pointer.data

    def write_data(self, pointer, value):
        pointer.data = value

    def walk_and_sum(self, pointer):
        total = 0
        node = pointer
        while node is not None:
            total += node.data
            node = node.next
        return total

    def splice(self, pointer, value):
        """Create a server-local node and link it into the client's list."""
        fresh = Node(value)
        fresh.next = pointer.next
        pointer.next = fresh

    def read_through(self, pointer):
        return pointer.next.data


def build_chain(*values):
    head = None
    for value in reversed(values):
        head = Node(value, next=head)
    return head


class TestFieldAccess:
    def test_remote_read(self, endpoint_pair):
        service = endpoint_pair.serve(PointerService())
        node = Node(42)
        assert service.read_data(endpoint_pair.client.pointer_to(node)) == 42

    def test_remote_write_hits_client_object(self, endpoint_pair):
        service = endpoint_pair.serve(PointerService())
        node = Node("old")
        service.write_data(endpoint_pair.client.pointer_to(node), "new")
        assert node.data == "new"  # the CLIENT object changed, no restore

    def test_chained_traversal(self, endpoint_pair):
        service = endpoint_pair.serve(PointerService())
        head = build_chain(1, 2, 3, 4)
        assert service.walk_and_sum(endpoint_pair.client.pointer_to(head)) == 10

    def test_nested_pointer_read(self, endpoint_pair):
        service = endpoint_pair.serve(PointerService())
        head = build_chain("first", "second")
        assert service.read_through(endpoint_pair.client.pointer_to(head)) == "second"

    def test_every_access_is_a_round_trip(self, endpoint_pair):
        service = endpoint_pair.serve(PointerService())
        head = build_chain(*range(10))
        before = endpoint_pair.server.channel_to(
            endpoint_pair.client.address
        ).stats.requests
        service.walk_and_sum(endpoint_pair.client.pointer_to(head))
        after = endpoint_pair.server.channel_to(
            endpoint_pair.client.address
        ).stats.requests
        # 10 data reads + 10 next reads minimum.
        assert after - before >= 20

    def test_missing_attribute_raises_remotely(self, endpoint_pair):
        service = endpoint_pair.serve(PointerService())
        node = Node(1)

        class BadService(Remote):
            def poke(self, pointer):
                return pointer.no_such_field

        bad = endpoint_pair.serve(BadService(), name="bad")
        with pytest.raises(RemoteInvocationError):
            bad.poke(endpoint_pair.client.pointer_to(node))


class TestCrossEndpointStructures:
    def test_server_node_spliced_into_client_list(self, endpoint_pair):
        service = endpoint_pair.serve(PointerService())
        head = build_chain(1, 3)
        service.splice(endpoint_pair.client.pointer_to(head), 2)
        # head.next is now a pointer to a SERVER-owned node.
        assert isinstance(head.next, RemotePointer)
        assert head.next.data == 2          # transparently readable
        assert head.next.next is not None
        assert head.next.next.data == 3     # original client node beyond it

    def test_distributed_cycle_leaks(self, endpoint_pair):
        """The spliced node creates cross-endpoint references that
        reference counting can never collect."""
        service = endpoint_pair.serve(PointerService())
        head = build_chain(1, 3)
        service.splice(endpoint_pair.client.pointer_to(head), 2)
        assert endpoint_pair.client.exports.dgc.live_referenced_count() > 0
        assert endpoint_pair.server.exports.dgc.live_referenced_count() > 0

    def test_leak_budget_aborts_run(self, make_endpoint_pair):
        pair = make_endpoint_pair(
            client_config=NRMIConfig(policy="none", leak_budget=5)
        )
        service = pair.serve(PointerService())
        head = build_chain(*range(50))
        with pytest.raises((DistributedLeakError, RemoteInvocationError)):
            service.walk_and_sum(pair.client.pointer_to(head))


class TestDgcRelease:
    def test_release_decrements_owner(self, endpoint_pair):
        node = Node(1)
        pointer = endpoint_pair.client.pointer_to(node)
        object_id = pointer.descriptor.object_id
        assert endpoint_pair.client.exports.dgc.refcount(object_id) == 1
        endpoint_pair.client.release(pointer)
        assert endpoint_pair.client.exports.dgc.refcount(object_id) == 0

    def test_released_object_unexported(self, endpoint_pair):
        node = Node(1)
        pointer = endpoint_pair.client.pointer_to(node)
        endpoint_pair.client.release(pointer)
        service = endpoint_pair.serve(PointerService())
        with pytest.raises(RemoteInvocationError):
            service.read_data(pointer)  # NoSuchObjectError remotely


class TestPointerIdentity:
    def test_pointer_resolves_to_local_object_at_owner(self, endpoint_pair):
        """A pointer arriving back at its owner unwraps to the object."""
        node = Node("mine")
        pointer = endpoint_pair.client.pointer_to(node)
        resolved = endpoint_pair.client.decode_pointer_value(
            endpoint_pair.client.encode_pointer_value(pointer)
        )
        assert resolved is node

    def test_primitive_values_inline(self, endpoint_pair):
        encoded = endpoint_pair.client.encode_pointer_value("just-a-string")
        assert endpoint_pair.client.decode_pointer_value(encoded) == "just-a-string"

    def test_repr(self, endpoint_pair):
        pointer = endpoint_pair.client.pointer_to(Node(1))
        assert "RemotePointer" in repr(pointer)
