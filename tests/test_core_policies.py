"""Restore policies end-to-end at the payload level (no transport)."""

import pytest

from repro.core.restore_protocol import (
    ClientRestoreContext,
    DceRestorePolicy,
    DeltaRestorePolicy,
    FullRestorePolicy,
    NoRestorePolicy,
    ServerRestoreContext,
    policy_by_name,
)
from repro.errors import RestoreError
from repro.serde.reader import ObjectReader
from repro.serde.writer import ObjectWriter

from tests.model_helpers import Box, Node, heap_fingerprint


def simulate_call(policy, build_args, mutate, result_of=lambda *a: None):
    """Run the marshal → execute → restore cycle for one root argument."""
    client_root = build_args()
    writer = ObjectWriter()
    writer.write_root(client_root)
    client_map = list(writer.linear_map)

    reader = ObjectReader(writer.getvalue())
    server_root = reader.read_root()
    retained = list(reader.linear_map)

    server_context = ServerRestoreContext(retained=retained, restore_roots=[server_root])
    snapshot = policy.snapshot(server_context)
    mutate(server_root)
    result = result_of(server_root)
    payload = policy.build_response(result, server_context, snapshot)

    client_context = ClientRestoreContext(originals=client_map)
    restored_result, stats = policy.parse_response(payload, client_context)
    return client_root, restored_result, stats, len(payload)


class TestPolicyRegistry:
    @pytest.mark.parametrize("name", ["none", "full", "delta", "dce"])
    def test_lookup(self, name):
        assert policy_by_name(name).name == name

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            policy_by_name("magic")

    def test_fresh_instance_per_lookup(self):
        assert policy_by_name("full") is not policy_by_name("full")


class TestNoRestore:
    def test_result_returned_mutations_dropped(self):
        root, result, stats, _bytes = simulate_call(
            NoRestorePolicy(),
            build_args=lambda: Node(1),
            mutate=lambda node: setattr(node, "data", 99),
            result_of=lambda node: node.data,
        )
        assert result == 99
        assert root.data == 1  # call-by-copy: caller unchanged
        assert stats is None


class TestFullRestore:
    def test_mutation_restored(self):
        root, _result, stats, _bytes = simulate_call(
            FullRestorePolicy(),
            build_args=lambda: Node(1),
            mutate=lambda node: setattr(node, "data", 41),
        )
        assert root.data == 41
        assert stats.old_overwritten == 1

    def test_result_identity_joins_restored_graph(self):
        root, result, _stats, _bytes = simulate_call(
            FullRestorePolicy(),
            build_args=lambda: Node("x"),
            mutate=lambda node: None,
            result_of=lambda node: node,  # server returns the param
        )
        assert result is root

    def test_unreachable_changes_restored(self):
        def build():
            keep = Node("keep")
            return Node("root", next=keep)

        def mutate(node):
            node.next.data = "changed"
            node.next = None  # detach

        root, _result, _stats, _bytes = simulate_call(
            FullRestorePolicy(), build, mutate
        )
        assert root.next is None  # detach restored... and the old child?
        # The old child was only reachable via root; the caller held no
        # alias here, so nothing further to observe. Covered with aliases
        # in the integration tests.


class TestDeltaRestore:
    def test_equivalent_to_full_when_everything_changes(self):
        def build():
            return Node(1, next=Node(2))

        def mutate(node):
            node.data = 10
            node.next.data = 20

        root_full, _r, _s, _b = simulate_call(FullRestorePolicy(), build, mutate)
        root_delta, _r, _s, _b = simulate_call(DeltaRestorePolicy(), build, mutate)
        assert heap_fingerprint([root_full]) == heap_fingerprint([root_delta])

    def test_no_change_ships_almost_nothing(self):
        def build():
            return Box([Node(i) for i in range(60)])

        _root, _result, _stats, full_bytes = simulate_call(
            FullRestorePolicy(), build, mutate=lambda box: None
        )
        _root, _result, _stats, delta_bytes = simulate_call(
            DeltaRestorePolicy(), build, mutate=lambda box: None
        )
        assert delta_bytes < full_bytes / 5

    def test_partial_change_restores_only_that(self):
        def build():
            return Box([Node(i) for i in range(10)])

        def mutate(box):
            box.payload[3].data = 999

        root, _result, stats, _bytes = simulate_call(
            DeltaRestorePolicy(), build, mutate
        )
        assert root.payload[3].data == 999
        assert [n.data for n in root.payload[:3]] == [0, 1, 2]
        assert stats.old_overwritten == 1  # only the changed node shipped

    def test_new_object_referencing_unchanged_old(self):
        def build():
            return Box(Node("anchor"))

        def mutate(box):
            # New node points at an UNCHANGED old node.
            box.extra = Node("new", next=box.payload)

        root, _result, _stats, _bytes = simulate_call(
            DeltaRestorePolicy(), build, mutate
        )
        assert root.extra.data == "new"
        assert root.extra.next is root.payload  # resolved to the original

    def test_structural_change_detected(self):
        def build():
            return Box([1, 2, 3])

        def mutate(box):
            box.payload.append(4)

        root, _result, _stats, _bytes = simulate_call(
            DeltaRestorePolicy(), build, mutate
        )
        assert root.payload == [1, 2, 3, 4]


class TestDcePolicy:
    def test_reachable_changes_restored(self):
        root, _result, _stats, _bytes = simulate_call(
            DceRestorePolicy(),
            build_args=lambda: Node(1, next=Node(2)),
            mutate=lambda node: setattr(node.next, "data", 22),
        )
        assert root.next.data == 22

    def test_unreachable_changes_lost(self):
        def build():
            return Node("root", next=Node("child"))

        def mutate(node):
            node.next.data = "silently-lost"
            node.next = None

        client_detached = []

        def build_and_remember():
            root = build()
            client_detached.append(root.next)
            return root

        root, _result, _stats, _bytes = simulate_call(
            DceRestorePolicy(), build_and_remember, mutate
        )
        assert root.next is None
        assert client_detached[0].data == "child"  # the DCE data loss

    def test_smaller_payload_than_full_after_detach(self):
        def build():
            return Node("root", next=Node("big", next=Node("subtree")))

        def mutate(node):
            node.next = None  # orphan two nodes

        _r1, _r2, _s, full_bytes = simulate_call(FullRestorePolicy(), build, mutate)
        _r1, _r2, _s, dce_bytes = simulate_call(DceRestorePolicy(), build, mutate)
        assert dce_bytes < full_bytes


class TestPayloadValidation:
    def test_full_restore_rejects_non_list_payload(self):
        policy = FullRestorePolicy()
        writer = ObjectWriter()
        writer.write_root("result")
        writer.write_root("not-a-list")
        with pytest.raises(RestoreError):
            policy.parse_response(
                writer.getvalue(), ClientRestoreContext(originals=[])
            )

    def test_delta_rejects_out_of_range_oldref(self):
        def build():
            return Box(Node("x"))

        def mutate(box):
            box.marker = Node("new", next=box.payload)

        policy = DeltaRestorePolicy()
        client_root = build()
        writer = ObjectWriter()
        writer.write_root(client_root)
        reader = ObjectReader(writer.getvalue())
        server_root = reader.read_root()
        retained = list(reader.linear_map)
        context = ServerRestoreContext(retained=retained, restore_roots=[server_root])
        snap = policy.snapshot(context)
        mutate(server_root)
        payload = policy.build_response(None, context, snap)
        with pytest.raises(RestoreError):
            # Give the client FEWER originals than the payload references.
            policy.parse_response(payload, ClientRestoreContext(originals=[]))
