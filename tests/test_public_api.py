"""The public API surface: imports, exports, and docstrings."""

import importlib

import pytest

import repro
from repro import nrmi


PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.core.copy_restore",
    "repro.core.local",
    "repro.core.markers",
    "repro.core.matching",
    "repro.core.restore_protocol",
    "repro.core.semantics",
    "repro.core.verify",
    "repro.nrmi",
    "repro.nrmi.annotations",
    "repro.nrmi.batch",
    "repro.nrmi.config",
    "repro.nrmi.interfaces",
    "repro.nrmi.invocation",
    "repro.nrmi.runtime",
    "repro.nrmi.server_main",
    "repro.rmi",
    "repro.rmi.activation",
    "repro.rmi.dgc",
    "repro.rmi.dispatcher",
    "repro.rmi.export",
    "repro.rmi.protocol",
    "repro.rmi.registry",
    "repro.rmi.remote_ref",
    "repro.serde",
    "repro.serde.accessors",
    "repro.serde.adapters",
    "repro.serde.dump",
    "repro.serde.hooks",
    "repro.serde.kinds",
    "repro.serde.linear_map",
    "repro.serde.profiles",
    "repro.serde.reader",
    "repro.serde.registry",
    "repro.serde.tags",
    "repro.serde.walker",
    "repro.serde.writer",
    "repro.transport",
    "repro.transport.base",
    "repro.transport.fault",
    "repro.transport.framing",
    "repro.transport.inproc",
    "repro.transport.reliability",
    "repro.transport.resolver",
    "repro.transport.simnet",
    "repro.transport.tcp",
    "repro.util",
    "repro.util.buffers",
    "repro.util.clock",
    "repro.util.identity",
    "repro.util.logging",
    "repro.util.metrics",
    "repro.util.rng",
    "repro.bench",
    "repro.bench.figures",
    "repro.bench.harness",
    "repro.bench.manual_restore",
    "repro.bench.mutators",
    "repro.bench.report",
    "repro.bench.structures",
    "repro.bench.tables",
    "repro.bench.trees",
    "repro.errors",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports_and_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


def test_version():
    assert repro.__version__
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)


def test_top_level_exports():
    assert set(repro.__all__) == {
        "__version__",
        "Restorable",
        "Serializable",
        "register_class",
    }


def test_nrmi_exports_resolve():
    for name in nrmi.__all__:
        assert getattr(nrmi, name) is not None


def test_all_public_classes_documented():
    from repro.nrmi.runtime import Endpoint
    from repro.core.copy_restore import RestoreEngine
    from repro.serde.writer import ObjectWriter
    from repro.serde.reader import ObjectReader
    from repro.rmi.remote_ref import RemotePointer, RemoteStub

    for cls in (Endpoint, RestoreEngine, ObjectWriter, ObjectReader,
                RemotePointer, RemoteStub):
        assert cls.__doc__, f"{cls.__name__} lacks a docstring"


def test_console_script_entry_point():
    from repro.bench.report import main

    assert callable(main)
