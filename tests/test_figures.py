"""The paper's Figures 1-9 as assertions against every calling semantics."""

import pytest

from repro.bench.figures import (
    build_figure1,
    expected_figure2,
    expected_figure9,
    expected_unchanged,
    foo,
    snapshot,
)
from repro.bench.trees import TreeNode
from repro.core.markers import Remote
from repro.core.restore_protocol import (
    ClientRestoreContext,
    FullRestorePolicy,
    ServerRestoreContext,
)
from repro.nrmi.config import NRMIConfig
from repro.serde.reader import ObjectReader
from repro.serde.writer import ObjectWriter


class FooService(Remote):
    def foo(self, tree):
        return foo(tree)


def remote_foo(make_endpoint_pair, policy):
    fig = build_figure1()
    config = NRMIConfig(policy=policy)
    pair = make_endpoint_pair(server_config=config, client_config=config)
    service = pair.serve(FooService())
    result = service.foo(fig.t)
    return fig, result


class TestFigure1:
    def test_initial_construction(self):
        fig = build_figure1()
        assert fig.t.data == 5
        assert fig.t.left is fig.alias1
        assert fig.t.right is fig.alias2
        assert fig.alias2.right is fig.node12
        assert fig.node12.left is fig.node3


class TestFigure2Local:
    def test_local_call_state(self):
        fig = build_figure1()
        returned = foo(fig.t)
        assert snapshot(fig) == expected_figure2()
        assert returned is fig.t.right


class TestFigure2Remote:
    def test_nrmi_full_matches_local(self, make_endpoint_pair):
        fig, result = remote_foo(make_endpoint_pair, "full")
        assert snapshot(fig) == expected_figure2()
        assert result is fig.t.right  # returned subtree joined the heap

    def test_nrmi_delta_matches_local(self, make_endpoint_pair):
        fig, result = remote_foo(make_endpoint_pair, "delta")
        assert snapshot(fig) == expected_figure2()
        assert result is fig.t.right


class TestFigure9Dce:
    def test_dce_partial_restore(self, make_endpoint_pair):
        fig, _result = remote_foo(make_endpoint_pair, "dce")
        assert snapshot(fig) == expected_figure9()

    def test_dce_differs_from_local_exactly_on_unreachable(self, make_endpoint_pair):
        fig, _result = remote_foo(make_endpoint_pair, "dce")
        state = snapshot(fig)
        full = expected_figure2()
        differing = {key for key in state if state[key] != full[key]}
        assert differing == {"alias1", "alias2"}


class TestCallByCopy:
    def test_nothing_restored(self, make_endpoint_pair):
        fig, _result = remote_foo(make_endpoint_pair, "none")
        assert snapshot(fig) == expected_unchanged()


class TestAlgorithmSteps:
    """Figures 4-7: observable invariants of the algorithm's stages."""

    def test_step1_linear_map_covers_all_reachable(self):
        fig = build_figure1()
        writer = ObjectWriter()
        writer.write_root(fig.t)
        in_map = [obj for obj in writer.linear_map if isinstance(obj, TreeNode)]
        assert {id(n) for n in in_map} == {
            id(fig.t), id(fig.alias1), id(fig.alias2), id(fig.node12), id(fig.node3)
        }

    def test_step2_server_map_aligned(self):
        fig = build_figure1()
        writer = ObjectWriter()
        writer.write_root(fig.t)
        reader = ObjectReader(writer.getvalue())
        reader.read_root()
        assert len(reader.linear_map) == len(writer.linear_map)
        for client_obj, server_obj in zip(writer.linear_map, reader.linear_map):
            assert client_obj.data == server_obj.data

    def test_step3_unreachable_objects_still_returned(self):
        """Figure 5: the map retains objects foo() disconnected."""
        fig = build_figure1()
        writer = ObjectWriter()
        writer.write_root(fig.t)
        reader = ObjectReader(writer.getvalue())
        server_t = reader.read_root()
        retained = list(reader.linear_map)
        foo(server_t)
        # old left and old right are no longer reachable from server_t...
        reachable_data = set()
        stack = [server_t]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            reachable_data.add(id(node))
            stack.extend([node.left, node.right])
        detached = [obj for obj in retained if id(obj) not in reachable_data]
        assert {obj.data for obj in detached} == {0, 9}  # old left, old right
        # ...but the retained list still references them (step 3's point).
        policy = FullRestorePolicy()
        payload = policy.build_response(
            None, ServerRestoreContext(retained=retained, restore_roots=[server_t]), None
        )
        client_map = list(writer.linear_map)
        policy.parse_response(payload, ClientRestoreContext(originals=client_map))
        assert fig.alias1.data == 0
        assert fig.alias2.data == 9

    def test_steps5_6_identity_results(self, make_endpoint_pair):
        """Figure 6/7: originals overwritten; new nodes repointed."""
        fig, _ = remote_foo(make_endpoint_pair, "full")
        # Old node 12 kept its identity (step 5)...
        assert fig.t.right.left is fig.node12
        # ...and the NEW temp node's pointer was converted to it (step 6).
        assert fig.node12.data == 8
        assert fig.node12.left is fig.node3
