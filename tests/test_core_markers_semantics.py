"""Marker types and per-parameter passing-mode resolution (Section 5.1)."""

import pytest

from repro.core.markers import Remote, Restorable, Serializable, is_restorable
from repro.core.semantics import PassingMode, resolve_mode, resolve_modes
from repro.serde.registry import global_registry

from tests.model_helpers import Box, Node, Pair


class TestMarkers:
    def test_restorable_extends_serializable(self):
        """The paper: Restorable extends Serializable."""
        assert issubclass(Restorable, Serializable)

    def test_subclass_auto_registration(self):
        class AutoReg(Serializable):
            pass

        assert global_registry.is_registered(AutoReg)

    def test_deep_subclass_also_registered(self):
        class Level1(Restorable):
            pass

        class Level2(Level1):
            pass

        assert global_registry.is_registered(Level2)

    def test_is_restorable(self):
        assert is_restorable(Node(1))
        assert not is_restorable(Pair(1, 2))
        assert not is_restorable([1, 2])
        assert not is_restorable(42)


class TestModeResolution:
    def test_primitives_by_value(self):
        for value in (None, True, 3, 2.5, "s", b"b", complex(1, 2)):
            assert resolve_mode(value) is PassingMode.BY_VALUE

    def test_containers_by_copy(self):
        for value in ([1], {1: 2}, {3}, (4,), bytearray(b"x")):
            assert resolve_mode(value) is PassingMode.BY_COPY

    def test_serializable_by_copy(self):
        assert resolve_mode(Pair(1, 2)) is PassingMode.BY_COPY

    def test_restorable_by_copy_restore(self):
        assert resolve_mode(Box()) is PassingMode.BY_COPY_RESTORE
        assert resolve_mode(Node(1)) is PassingMode.BY_COPY_RESTORE

    def test_remote_by_reference(self):
        class Svc(Remote):
            pass

        assert resolve_mode(Svc()) is PassingMode.BY_REFERENCE

    def test_remote_wins_over_restorable(self):
        """An exported object passes by reference even if also Restorable."""

        class Both(Remote, Restorable):
            pass

        assert resolve_mode(Both()) is PassingMode.BY_REFERENCE

    def test_resolve_modes_vector(self):
        modes = resolve_modes((1, Box(), [2], Pair(3, 4)))
        assert modes == (
            PassingMode.BY_VALUE,
            PassingMode.BY_COPY_RESTORE,
            PassingMode.BY_COPY,
            PassingMode.BY_COPY,
        )

    def test_restores_property(self):
        assert PassingMode.BY_COPY_RESTORE.restores
        assert not PassingMode.BY_COPY.restores
        assert not PassingMode.BY_VALUE.restores
        assert not PassingMode.BY_REFERENCE.restores
