"""Endpoint runtime odds and ends: lifecycle, ping, release, defaults."""

import pytest

from repro.core.markers import Remote
from repro.errors import RemoteError, TransportError
from repro.nrmi.config import NRMIConfig
from repro.nrmi.runtime import Endpoint, default_endpoint
from repro.rmi.remote_ref import RemoteDescriptor
from repro.transport.resolver import ChannelResolver

from tests.model_helpers import Box, Node


class Echo(Remote):
    def echo(self, value):
        return value


class TestLifecycle:
    def test_unique_names_generated(self):
        resolver = ChannelResolver()
        a = Endpoint(resolver=resolver)
        b = Endpoint(resolver=resolver)
        try:
            assert a.name != b.name
            assert a.address != b.address
        finally:
            a.close()
            b.close()

    def test_closed_endpoint_unreachable(self):
        resolver = ChannelResolver()
        endpoint = Endpoint(resolver=resolver)
        address = endpoint.address
        endpoint.close()
        client = Endpoint(resolver=resolver)
        try:
            with pytest.raises(TransportError):
                client.channel_to(address).request(b"\x05")
        finally:
            client.close()

    def test_serve_tcp_idempotent(self):
        endpoint = Endpoint(resolver=ChannelResolver())
        try:
            first = endpoint.serve_tcp()
            second = endpoint.serve_tcp()
            assert first == second
        finally:
            endpoint.close()

    def test_context_manager(self):
        resolver = ChannelResolver()
        with Endpoint(resolver=resolver) as endpoint:
            assert endpoint.address.startswith("inproc://")

    def test_default_endpoint_singleton(self):
        first = default_endpoint()
        second = default_endpoint()
        assert first is second

    def test_default_endpoint_recreated_after_close(self):
        first = default_endpoint()
        first.close()
        second = default_endpoint()
        assert second is not first
        assert not second._closed


class TestPingAndRelease:
    def test_ping(self, endpoint_pair):
        assert endpoint_pair.client.ping(endpoint_pair.server.address)

    def test_release_invalid_type(self, endpoint_pair):
        with pytest.raises(RemoteError):
            endpoint_pair.client.release("not-a-ref")

    def test_release_by_descriptor(self, endpoint_pair):
        node = Node(1)
        pointer = endpoint_pair.client.pointer_to(node)
        descriptor = RemoteDescriptor(
            pointer.descriptor.address, pointer.descriptor.object_id
        )
        endpoint_pair.client.release(descriptor)
        assert endpoint_pair.client.exports.dgc.refcount(
            descriptor.object_id
        ) == 0

    def test_release_unreachable_owner_is_silent(self):
        resolver = ChannelResolver()
        client = Endpoint(resolver=resolver)
        try:
            ghost = RemoteDescriptor("inproc://gone", 7)
            client.release(ghost)  # no exception
        finally:
            client.close()

    def test_renew_invalid_type(self, endpoint_pair):
        with pytest.raises(RemoteError):
            endpoint_pair.client.renew(42)


class TestConfigSurface:
    def test_profiles_reachable_via_config(self):
        endpoint = Endpoint(
            config=NRMIConfig(profile="legacy", implementation="portable"),
            resolver=ChannelResolver(),
        )
        try:
            assert endpoint.profile.name == "legacy"
            assert endpoint.accessor.name == "portable"
        finally:
            endpoint.close()

    def test_invalid_method_via_invoke(self, endpoint_pair):
        service = endpoint_pair.serve(Echo())
        with pytest.raises(Exception):
            endpoint_pair.client.invoke(service.descriptor, "_sneaky", ())

    def test_stub_repr(self, endpoint_pair):
        service = endpoint_pair.serve(Echo())
        assert "RemoteStub" in repr(service)

    def test_metrics_isolated_per_endpoint(self, endpoint_pair):
        service = endpoint_pair.serve(Echo())
        service.echo(1)
        client_calls = endpoint_pair.client.metrics.snapshot().get(
            "calls.outgoing", 0
        )
        server_calls = endpoint_pair.server.metrics.snapshot().get(
            "calls.outgoing", 0
        )
        assert client_calls >= 2  # lookup + echo
        assert server_calls == 0
