"""Call batching and remote interface contracts."""

import pytest

from repro.core.markers import Remote
from repro.errors import RemoteError, RemoteInvocationError
from repro.nrmi.interfaces import (
    CheckedStub,
    interface_methods,
    validate_implementation,
)

from tests.model_helpers import Box, Node


class MathService(Remote):
    def add(self, a, b):
        return a + b

    def bump(self, box):
        box.payload += 1
        return box.payload

    def fail(self):
        raise ValueError("batched failure")


class TestBatching:
    def test_results_after_flush(self, endpoint_pair):
        service = endpoint_pair.serve(MathService())
        with endpoint_pair.client.batch() as batch:
            first = batch.call(service, "add", 1, 2)
            second = batch.call(service, "add", 10, 20)
            assert not first.done
        assert first.result() == 3
        assert second.result() == 30

    def test_one_round_trip_for_many_calls(self, endpoint_pair):
        service = endpoint_pair.serve(MathService())
        channel = endpoint_pair.client.channel_to(endpoint_pair.server.address)
        before = channel.stats.snapshot()["requests"]
        with endpoint_pair.client.batch() as batch:
            handles = [batch.call(service, "add", i, i) for i in range(10)]
        after = channel.stats.snapshot()["requests"]
        assert after - before == 1
        assert [handle.result() for handle in handles] == [i * 2 for i in range(10)]

    def test_copy_restore_applies_per_batched_call(self, endpoint_pair):
        service = endpoint_pair.serve(MathService())
        boxes = [Box(i) for i in range(4)]
        with endpoint_pair.client.batch() as batch:
            handles = [batch.call(service, "bump", box) for box in boxes]
        assert [handle.result() for handle in handles] == [1, 2, 3, 4]
        assert [box.payload for box in boxes] == [1, 2, 3, 4]

    def test_per_call_failures_isolated(self, endpoint_pair):
        service = endpoint_pair.serve(MathService())
        with endpoint_pair.client.batch() as batch:
            good = batch.call(service, "add", 1, 1)
            bad = batch.call(service, "fail")
            also_good = batch.call(service, "add", 2, 2)
        assert good.result() == 2
        assert also_good.result() == 4
        with pytest.raises(RemoteInvocationError):
            bad.result()

    def test_result_before_flush_raises(self, endpoint_pair):
        service = endpoint_pair.serve(MathService())
        batch = endpoint_pair.client.batch()
        handle = batch.call(service, "add", 1, 1)
        with pytest.raises(RemoteError):
            handle.result()
        batch.flush()
        assert handle.result() == 2

    def test_call_after_flush_rejected(self, endpoint_pair):
        service = endpoint_pair.serve(MathService())
        batch = endpoint_pair.client.batch()
        batch.flush()
        with pytest.raises(RemoteError):
            batch.call(service, "add", 1, 1)

    def test_exception_in_with_block_skips_flush(self, endpoint_pair):
        service = endpoint_pair.serve(MathService())
        with pytest.raises(RuntimeError):
            with endpoint_pair.client.batch() as batch:
                handle = batch.call(service, "add", 1, 1)
                raise RuntimeError("abort the batch")
        assert not handle.done

    def test_empty_batch_flushes_cleanly(self, endpoint_pair):
        with endpoint_pair.client.batch() as batch:
            pass
        assert len(batch) == 0

    def test_batch_marshals_at_queue_time(self, endpoint_pair):
        """Later local mutation must not leak into a queued call."""
        service = endpoint_pair.serve(MathService())
        box = Box(0)
        batch = endpoint_pair.client.batch()
        handle = batch.call(service, "bump", box)
        box.payload = 100  # after queueing: the queued call saw 0...
        batch.flush()
        assert handle.result() == 1
        assert box.payload == 1  # ...and restore overwrote the local edit


class PricingContract:
    def price(self, cart): ...

    def quote(self, sku, quantity): ...


class GoodPricing(Remote):
    def price(self, cart):
        return 100

    def quote(self, sku, quantity):
        return sku * quantity

    def internal_audit(self):  # NOT in the contract
        return "secret"


class MissingMethod(Remote):
    def price(self, cart):
        return 1


class WrongArity(Remote):
    def price(self, cart, extra_required):
        return 1

    def quote(self, sku, quantity):
        return 1


class TestInterfaceValidation:
    def test_interface_methods_collected(self):
        assert interface_methods(PricingContract) == {"price", "quote"}

    def test_empty_interface_rejected(self):
        class Empty:
            pass

        with pytest.raises(RemoteError):
            interface_methods(Empty)

    def test_valid_implementation_passes(self):
        methods = validate_implementation(GoodPricing(), PricingContract)
        assert methods == {"price", "quote"}

    def test_missing_method_detected(self):
        with pytest.raises(RemoteError, match="missing: quote"):
            validate_implementation(MissingMethod(), PricingContract)

    def test_wrong_arity_detected(self):
        with pytest.raises(RemoteError, match="incompatible signature"):
            validate_implementation(WrongArity(), PricingContract)

    def test_var_positional_impl_accepted(self):
        class Flexible(Remote):
            def price(self, *args):
                return 0

            def quote(self, *args, **kwargs):
                return 0

        validate_implementation(Flexible(), PricingContract)


class TestInterfaceEnforcement:
    def test_contract_methods_callable(self, endpoint_pair):
        endpoint_pair.server.bind("pricing", GoodPricing(), interface=PricingContract)
        stub = endpoint_pair.client.lookup(endpoint_pair.server.address, "pricing")
        assert stub.quote(3, 4) == 12

    def test_off_contract_method_refused(self, endpoint_pair):
        endpoint_pair.server.bind("pricing", GoodPricing(), interface=PricingContract)
        stub = endpoint_pair.client.lookup(endpoint_pair.server.address, "pricing")
        with pytest.raises((RemoteError, RemoteInvocationError), match="interface"):
            stub.internal_audit()

    def test_unrestricted_binding_allows_everything(self, endpoint_pair):
        endpoint_pair.server.bind("pricing", GoodPricing())
        stub = endpoint_pair.client.lookup(endpoint_pair.server.address, "pricing")
        assert stub.internal_audit() == "secret"

    def test_invalid_impl_rejected_at_bind(self, endpoint_pair):
        with pytest.raises(RemoteError):
            endpoint_pair.server.bind(
                "pricing", MissingMethod(), interface=PricingContract
            )

    def test_checked_stub_client_side(self, endpoint_pair):
        endpoint_pair.server.bind("pricing", GoodPricing(), interface=PricingContract)
        stub = endpoint_pair.client.lookup(endpoint_pair.server.address, "pricing")
        checked = CheckedStub(stub, PricingContract)
        assert checked.quote(2, 5) == 10
        with pytest.raises(AttributeError):
            checked.internal_audit
