"""The structural stream inspector."""

import pytest

from repro.errors import WireFormatError
from repro.serde.dump import dump_stream
from repro.serde.writer import ObjectWriter
from repro.serde.profiles import LEGACY_PROFILE

from tests.model_helpers import Node, Pair


def encode(*roots, profile=None):
    kwargs = {"profile": profile} if profile else {}
    writer = ObjectWriter(**kwargs)
    for root in roots:
        writer.write_root(root)
    return writer.getvalue()


class TestDump:
    def test_scalars(self):
        out = dump_stream(encode(42, "hi", None, True, 2.5))
        assert "int 42" in out
        assert "str #0 'hi'" in out
        assert "None" in out
        assert "True" in out
        assert "float 2.5" in out

    def test_container_structure_indented(self):
        out = dump_stream(encode([1, [2]]))
        lines = out.splitlines()
        assert any("list #0 (2 items)" in line for line in lines)
        assert any("list #1 (1 items)" in line for line in lines)

    def test_object_fields(self):
        out = dump_stream(encode(Pair(1, "x")))
        assert "Pair (2 fields)" in out
        assert ".first =" in out
        assert ".second =" in out

    def test_backreferences_shown(self):
        shared = [1]
        out = dump_stream(encode([shared, shared]))
        assert "ref -> #1" in out

    def test_roots_numbered(self):
        out = dump_stream(encode(1, 2))
        assert "root[0]:" in out
        assert "root[1]:" in out

    def test_works_without_registered_classes(self):
        """Structural decode: no class resolution needed."""
        payload = encode(Node("n", next=Node("m")))
        out = dump_stream(payload)
        assert out.count("Node") >= 1

    def test_legacy_profile_streams_dump_too(self):
        out = dump_stream(encode(Pair(1, 2), profile=LEGACY_PROFILE))
        assert "Pair" in out

    def test_long_strings_truncated(self):
        out = dump_stream(encode("x" * 100))
        assert "..." in out

    def test_bad_magic_rejected(self):
        with pytest.raises(WireFormatError):
            dump_stream(b"JUNKJUNKJUNK")

    def test_cli(self, tmp_path, capsys):
        from repro.serde.dump import main

        path = tmp_path / "stream.bin"
        path.write_bytes(encode({"k": [1]}))
        assert main([str(path)]) == 0
        assert "dict #0" in capsys.readouterr().out

    def test_cli_usage(self, capsys):
        from repro.serde.dump import main

        assert main([]) == 2
