"""Restore-phase edge cases through the full middleware stack."""

import pytest

from repro.core.markers import Remote, Restorable
from repro.nrmi.config import NRMIConfig

from tests.model_helpers import Box, Node


class EdgeService(Remote):
    def clear_all(self, box):
        box.payload = None
        box.index = {}
        box.tags = set()

    def grow_bytearray(self, box):
        box.payload.extend(b"-grown")
        return bytes(box.payload)

    def shrink_list(self, box):
        del box.payload[2:]

    def rotate_dict_keys(self, box):
        box.payload = {value: key for key, value in box.payload.items()}

    def deep_nest(self, box, depth):
        current = box
        for _ in range(depth):
            fresh = Box(None)
            current.payload = fresh
            current = fresh
        current.payload = "bottom"

    def swap_containers(self, box):
        box.a, box.b = box.b, box.a

    def key_is_node(self, box, node):
        box.payload[node] = "keyed-by-object"

    def return_tuple_view(self, box):
        return (box.payload, len(box.payload))


class TestContainerEdges:
    def test_everything_cleared(self, endpoint_pair):
        service = endpoint_pair.serve(EdgeService())
        box = Box([Node(1)])
        box.index = {"k": 1}
        box.tags = {1, 2}
        service.clear_all(box)
        assert box.payload is None
        assert box.index == {}
        assert box.tags == set()

    def test_bytearray_grown_in_place(self, endpoint_pair):
        service = endpoint_pair.serve(EdgeService())
        buffer = bytearray(b"base")
        box = Box(buffer)
        result = service.grow_bytearray(box)
        assert result == b"base-grown"
        assert buffer == bytearray(b"base-grown")  # the SAME bytearray
        assert box.payload is buffer

    def test_list_shrunk_in_place(self, endpoint_pair):
        service = endpoint_pair.serve(EdgeService())
        items = [1, 2, 3, 4, 5]
        box = Box(items)
        service.shrink_list(box)
        assert items == [1, 2]

    def test_dict_key_value_rotation(self, endpoint_pair):
        service = endpoint_pair.serve(EdgeService())
        mapping = {"a": 1, "b": 2}
        box = Box(mapping)
        service.rotate_dict_keys(box)
        assert box.payload == {1: "a", 2: "b"}

    def test_object_as_dict_key_restored(self, endpoint_pair):
        service = endpoint_pair.serve(EdgeService())
        node = Node("key")
        box = Box({})
        service.key_is_node(box, node)
        # The key decodes to a node matched back to OUR node (it was
        # reachable from the restorable box? No — it travelled as its own
        # restorable argument, so identity maps to the caller's original).
        assert box.payload[node] == "keyed-by-object"

    def test_deep_nesting_created_remotely(self, endpoint_pair):
        service = endpoint_pair.serve(EdgeService())
        box = Box(None)
        service.deep_nest(box, 500)
        depth = 0
        current = box
        while isinstance(current.payload, Box):
            current = current.payload
            depth += 1
        assert depth == 500
        assert current.payload == "bottom"

    def test_field_swap_preserves_identity(self, endpoint_pair):
        service = endpoint_pair.serve(EdgeService())
        box = Box(None)
        left, right = [1], {2: 3}
        box.a, box.b = left, right
        service.swap_containers(box)
        assert box.a is right
        assert box.b is left

    def test_tuple_return_references_originals(self, endpoint_pair):
        service = endpoint_pair.serve(EdgeService())
        items = [Node(1), Node(2)]
        box = Box(items)
        view, count = service.return_tuple_view(box)
        assert count == 2
        assert view is items  # through the rebuilt tuple


class TestRestorableRootVariants:
    def test_restorable_with_no_reachable_mutables(self, endpoint_pair):
        class Lone(Restorable):
            def __init__(self):
                self.value = "only-primitives"

        class Setter(Remote):
            def set(self, lone):
                lone.value = "changed"

        service = endpoint_pair.serve(Setter())
        lone = Lone()
        service.set(lone)
        assert lone.value == "changed"

    def test_empty_restorable(self, endpoint_pair):
        class Empty(Restorable):
            pass

        class Toucher(Remote):
            def touch(self, obj):
                obj.added = True

        service = endpoint_pair.serve(Toucher())
        empty = Empty()
        service.touch(empty)
        assert empty.added is True

    def test_two_identical_restorables_same_object(self, endpoint_pair):
        class Pairwise(Remote):
            def mark(self, a, b):
                a.payload = "via-a"
                b.payload += "+via-b"

        service = endpoint_pair.serve(Pairwise())
        box = Box("")
        service.mark(box, box)
        assert box.payload == "via-a+via-b"

    def test_mixed_restorable_and_copy_sharing(self, endpoint_pair):
        """An object shared between a by-copy arg and a restorable arg is
        restorable (reachable from the restorable root)."""

        class Mixed(Remote):
            def mutate_via_copy_arg(self, copy_list, restorable_box):
                copy_list[0].data = "changed"

        service = endpoint_pair.serve(Mixed())
        shared = Node("original")
        box = Box(shared)
        service.mutate_via_copy_arg([shared], box)
        # The server mutated through the copy argument's path, but the
        # object IS reachable from the restorable root -> restored.
        assert shared.data == "changed"

    @pytest.mark.parametrize("policy", ["full", "delta"])
    def test_large_graph_smoke(self, make_endpoint_pair, policy):
        config = NRMIConfig(policy=policy)
        pair = make_endpoint_pair(server_config=config, client_config=config)

        class BigService(Remote):
            def touch_all(self, box):
                for node in box.payload:
                    node.data *= 2

        service = pair.serve(BigService())
        nodes = [Node(i) for i in range(3000)]
        box = Box(nodes)
        service.touch_all(box)
        assert [n.data for n in nodes[:5]] == [0, 2, 4, 6, 8]
        assert nodes[2999].data == 5998
