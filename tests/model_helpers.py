"""Model classes and graph utilities shared by many tests.

Defined at module level so marker auto-registration happens exactly once.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.core.markers import Restorable, Serializable
from repro.serde.accessors import OPTIMIZED_ACCESSOR
from repro.serde.kinds import Kind, classify
from repro.util.identity import IdentityMap


class Node(Restorable):
    """A general graph node used across the suite."""

    def __init__(self, data: Any = None, next: "Node" = None) -> None:
        self.data = data
        self.next = next

    def __repr__(self) -> str:
        return f"Node({self.data!r})"


class Pair(Serializable):
    """A by-copy two-field record."""

    def __init__(self, first: Any = None, second: Any = None) -> None:
        self.first = first
        self.second = second


class SlottedPoint(Serializable):
    """A __slots__ class (no instance dict)."""

    __slots__ = ("x", "y")

    def __init__(self, x: int = 0, y: int = 0) -> None:
        self.x = x
        self.y = y


class Box(Restorable):
    """A restorable wrapper holding arbitrary payload."""

    def __init__(self, payload: Any = None) -> None:
        self.payload = payload


def heap_fingerprint(roots: List[Any]) -> Tuple:
    """An isomorphism-stable projection of the heap reachable from *roots*.

    Thin wrapper over :func:`repro.core.verify.fingerprint` (the library
    feature) kept under the test-suite's historical name.
    """
    from repro.core.verify import fingerprint

    return fingerprint(roots)
