"""Serialization hooks: transient fields, writeReplace/readResolve analogues."""

import pytest

from repro.core.markers import Remote, Restorable, Serializable
from repro.serde.hooks import transient_fields
from repro.serde.reader import ObjectReader
from repro.serde.writer import ObjectWriter

from tests.model_helpers import Box


def roundtrip(value):
    writer = ObjectWriter()
    writer.write_root(value)
    reader = ObjectReader(writer.getvalue())
    result = reader.read_root()
    reader.expect_end()
    return result


class WithCache(Serializable):
    __nrmi_transient__ = ("cache", "session")

    def __init__(self, data):
        self.data = data
        self.cache = {"expensive": True}
        self.session = object()  # unserializable on purpose


class SubWithCache(WithCache):
    __nrmi_transient__ = ("extra_secret",)

    def __init__(self, data):
        super().__init__(data)
        self.extra_secret = "local-only"


class Money(Serializable):
    """writeReplace/readResolve pair: travels as its canonical cents form."""

    def __init__(self, cents):
        self.cents = cents

    def __nrmi_replace__(self):
        return MoneyWire(self.cents)


class MoneyWire(Serializable):
    def __init__(self, cents=0):
        self.cents = cents

    def __nrmi_resolve__(self):
        return Money(self.cents)


class Singleton(Serializable):
    INSTANCE = None

    def __nrmi_resolve__(self):
        return type(self).INSTANCE


Singleton.INSTANCE = Singleton()


class TestTransient:
    def test_transient_fields_not_serialized(self):
        result = roundtrip(WithCache("payload"))
        assert result.data == "payload"
        assert not hasattr(result, "cache")
        assert not hasattr(result, "session")

    def test_transient_makes_unserializable_fields_safe(self):
        # .session holds a bare object(); without transient this would
        # raise NotSerializableError.
        roundtrip(WithCache(1))

    def test_transient_union_along_mro(self):
        assert transient_fields(SubWithCache) == {"cache", "session", "extra_secret"}
        result = roundtrip(SubWithCache("d"))
        assert not hasattr(result, "extra_secret")

    def test_no_transients_by_default(self):
        assert transient_fields(Box) == frozenset()


class RestorableWithCache(Restorable):
    __nrmi_transient__ = ("view_handle",)

    def __init__(self, data):
        self.data = data
        self.view_handle = "client-gui-widget"


class TestTransientUnderCopyRestore:
    def test_local_transient_value_survives_restore(self, endpoint_pair):
        class Service(Remote):
            def bump(self, obj):
                obj.data += 1
                obj.view_handle = "server-junk"  # set remotely; must not travel

        service = endpoint_pair.serve(Service())
        obj = RestorableWithCache(10)
        service.bump(obj)
        assert obj.data == 11
        assert obj.view_handle == "client-gui-widget"  # preserved locally


class TestReplaceResolve:
    def test_replace_and_resolve_roundtrip(self):
        result = roundtrip(Money(250))
        assert isinstance(result, Money)
        assert result.cents == 250

    def test_shared_instance_resolves_shared(self):
        money = Money(100)
        result = roundtrip([money, money])
        assert result[0] is result[1]
        assert isinstance(result[0], Money)

    def test_resolve_canonicalizes_singleton(self):
        result = roundtrip([Singleton(), Singleton.INSTANCE])
        assert result[0] is Singleton.INSTANCE
        assert result[1] is Singleton.INSTANCE

    def test_nested_replace(self):
        result = roundtrip(Box({"price": Money(999)}))
        assert isinstance(result.payload["price"], Money)
        assert result.payload["price"].cents == 999

    def test_linear_maps_stay_aligned_with_resolve_types(self):
        writer = ObjectWriter()
        writer.write_root([Money(1), Box("x"), Money(2)])
        reader = ObjectReader(writer.getvalue())
        reader.read_root()
        assert len(writer.linear_map) == len(reader.linear_map)
        for original, copy in zip(writer.linear_map, reader.linear_map):
            assert type(original) is type(copy)

    def test_resolve_type_through_copy_restore_call(self, endpoint_pair):
        """Value-like resolve types pass through restorable graphs."""

        class PriceService(Remote):
            def discount(self, box):
                box.payload = Money(box.payload.cents // 2)

        service = endpoint_pair.serve(PriceService())
        box = Box(Money(400))
        service.discount(box)
        assert isinstance(box.payload, Money)
        assert box.payload.cents == 200
