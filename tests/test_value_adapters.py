"""Stdlib value adapters: datetime, Decimal, UUID over the wire."""

import datetime
import decimal
import uuid

import pytest

from repro.core.markers import Remote
from repro.errors import NotSerializableError
from repro.serde.adapters import register_value_adapter
from repro.serde.reader import ObjectReader
from repro.serde.writer import ObjectWriter

from tests.model_helpers import Box


def roundtrip(value):
    writer = ObjectWriter()
    writer.write_root(value)
    reader = ObjectReader(writer.getvalue())
    result = reader.read_root()
    reader.expect_end()
    return result


class TestDefaultAdapters:
    def test_datetime(self):
        value = datetime.datetime(2003, 5, 19, 14, 30, 15, 123456)
        result = roundtrip(value)
        assert result == value
        assert type(result) is datetime.datetime

    def test_datetime_with_timezone(self):
        value = datetime.datetime(
            2003, 5, 19, 14, 30, tzinfo=datetime.timezone.utc
        )
        assert roundtrip(value) == value

    def test_date(self):
        value = datetime.date(2003, 5, 19)  # ICDCS 2003
        result = roundtrip(value)
        assert result == value
        assert type(result) is datetime.date

    def test_time(self):
        value = datetime.time(23, 59, 59, 999999)
        assert roundtrip(value) == value

    def test_timedelta(self):
        value = datetime.timedelta(days=-3, seconds=7211, microseconds=13)
        assert roundtrip(value) == value

    def test_decimal(self):
        for text in ("0", "-12.3450", "1E+28", "NaN"):
            value = decimal.Decimal(text)
            result = roundtrip(value)
            assert str(result) == str(value)

    def test_uuid(self):
        value = uuid.uuid5(uuid.NAMESPACE_DNS, "nrmi.example")
        result = roundtrip(value)
        assert result == value

    def test_values_inside_structures(self):
        value = {
            "when": datetime.datetime(2020, 1, 1),
            "amounts": [decimal.Decimal("9.99"), decimal.Decimal("0.01")],
            "id": uuid.UUID(int=7),
        }
        assert roundtrip(value) == value

    def test_repeated_value_shares_encoding(self):
        stamp = datetime.datetime(2021, 6, 1)
        result = roundtrip([stamp] * 5)
        assert all(item == stamp for item in result)
        assert all(item is result[0] for item in result)  # handle-memoized

    def test_adapted_values_stay_out_of_linear_map(self):
        writer = ObjectWriter()
        writer.write_root([datetime.date(2000, 1, 1), [1]])
        assert all(
            not isinstance(obj, datetime.date) for obj in writer.linear_map
        )


class TestAdaptersThroughTheStack:
    def test_restorable_with_value_fields(self, endpoint_pair):
        class Invoice(Remote):
            def stamp(self, box):
                box.payload["paid_at"] = datetime.datetime(2003, 5, 21, 9, 0)
                box.payload["total"] = decimal.Decimal("199.99")

        service = endpoint_pair.serve(Invoice())
        box = Box({})
        service.stamp(box)
        assert box.payload["paid_at"] == datetime.datetime(2003, 5, 21, 9, 0)
        assert box.payload["total"] == decimal.Decimal("199.99")


class TestCustomAdapters:
    def test_register_custom_type(self):
        class Fraction2:
            def __init__(self, numerator, denominator):
                self.numerator = numerator
                self.denominator = denominator

            def __eq__(self, other):
                return (self.numerator, self.denominator) == (
                    other.numerator,
                    other.denominator,
                )

        register_value_adapter(
            Fraction2,
            "tests.fraction2",
            encode=lambda f: f"{f.numerator}/{f.denominator}".encode(),
            decode=lambda b: Fraction2(*map(int, b.split(b"/"))),
        )
        assert roundtrip(Box(Fraction2(22, 7))).payload == Fraction2(22, 7)

    def test_truly_unsupported_still_raises(self):
        with pytest.raises(NotSerializableError):
            roundtrip([object()])

    def test_generator_still_raises(self):
        with pytest.raises(NotSerializableError):
            roundtrip((x for x in range(3)))
