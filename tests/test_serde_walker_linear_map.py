"""Graph walker and LinearMap unit tests."""

from repro.serde.linear_map import LinearMap
from repro.serde.walker import count_reachable, iter_children, reachable

from tests.model_helpers import Node, Pair


class TestIterChildren:
    def test_list_children(self):
        assert list(iter_children([1, "a", None])) == [1, "a", None]

    def test_dict_children_keys_and_values(self):
        assert list(iter_children({"k": "v"})) == ["k", "v"]

    def test_object_children(self):
        assert list(iter_children(Pair(1, 2))) == [1, 2]

    def test_primitive_has_no_children(self):
        assert list(iter_children(42)) == []
        assert list(iter_children("string")) == []

    def test_tuple_and_set_children(self):
        assert list(iter_children((1, 2))) == [1, 2]
        assert set(iter_children({3, 4})) == {3, 4}


class TestReachable:
    def test_counts_identity_objects_once(self):
        shared = [1]
        roots = [[shared, shared]]
        objects = list(reachable(roots))
        ids = [id(obj) for obj in objects]
        assert len(ids) == len(set(ids))
        assert any(obj is shared for obj in objects)

    def test_mutable_only_filters_tuples(self):
        roots = [([1, 2], (3, 4), "s")]
        mutable = list(reachable(roots, mutable_only=True))
        assert all(isinstance(obj, list) for obj in mutable)

    def test_cycle_terminates(self):
        a = Node("a")
        a.next = a
        assert count_reachable([a]) == 1

    def test_deep_chain_no_recursion_error(self):
        head = Node(0)
        current = head
        for i in range(20_000):
            current.next = Node(i + 1)
            current = current.next
        assert count_reachable([head]) == 20_001

    def test_stop_predicate_prunes(self):
        inner = Node("hidden")
        boundary = Pair(inner, None)
        root = [boundary]
        seen = list(reachable([root], stop=lambda o: isinstance(o, Pair)))
        assert any(obj is boundary for obj in seen)
        assert not any(obj is inner for obj in seen)

    def test_strings_are_values_not_heap_cells(self):
        seen = list(reachable([["abc"]]))
        assert "abc" not in seen
        assert len(seen) == 1  # just the list

    def test_preorder_deterministic(self):
        a, b = [1], [2]
        root = [a, b]
        first = [id(o) for o in reachable([root])]
        second = [id(o) for o in reachable([root])]
        assert first == second == [id(root), id(a), id(b)]


class TestLinearMap:
    def test_append_assigns_positions(self):
        lmap = LinearMap()
        a, b = [1], [2]
        assert lmap.append(a) == 0
        assert lmap.append(b) == 1

    def test_append_idempotent(self):
        lmap = LinearMap()
        a = [1]
        assert lmap.append(a) == 0
        assert lmap.append(a) == 0
        assert len(lmap) == 1

    def test_position_of_missing(self):
        assert LinearMap().position_of([1]) is None

    def test_contains_by_identity(self):
        lmap = LinearMap()
        a = [1]
        lmap.append(a)
        assert a in lmap
        assert [1] not in lmap

    def test_iteration_order(self):
        lmap = LinearMap()
        items = [[i] for i in range(5)]
        for item in items:
            lmap.append(item)
        assert [obj[0] for obj in lmap] == [0, 1, 2, 3, 4]
        assert lmap[3] == [3]

    def test_init_from_list(self):
        items = [[1], [2]]
        lmap = LinearMap(items)
        assert len(lmap) == 2
        assert lmap.position_of(items[1]) == 1

    def test_objects_property(self):
        items = [[1], [2]]
        assert LinearMap(items).objects == items
