"""CLI entry points: the one-shot client, server arg handling."""

import json
import subprocess
import sys

import pytest

from repro.core.markers import Remote
from repro.nrmi.client_main import main as client_main, render
from repro.nrmi.runtime import Endpoint
from repro.nrmi.server_main import build_parser, instantiate
from repro.transport.resolver import ChannelResolver


class CalcService(Remote):
    def add(self, a, b):
        return a + b

    def record(self, items):
        return {"count": len(items), "items": items}


@pytest.fixture
def tcp_service():
    resolver = ChannelResolver()
    server = Endpoint(name="cli-server", resolver=resolver)
    server.bind("calc", CalcService())
    address = server.serve_tcp()
    yield address
    server.close()
    resolver.close_all()


class TestClientCli:
    def test_invoke_with_json_args(self, tcp_service, capsys):
        code = client_main(
            ["--address", tcp_service, "--name", "calc",
             "--method", "add", "--args", "[19, 23]"]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out) == 42

    def test_structured_args_and_result(self, tcp_service, capsys):
        code = client_main(
            ["--address", tcp_service, "--name", "calc",
             "--method", "record", "--args", '[["a", "b"]]']
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out) == {
            "count": 2, "items": ["a", "b"]
        }

    def test_list_bindings(self, tcp_service, capsys):
        assert client_main(["--address", tcp_service, "--list"]) == 0
        assert json.loads(capsys.readouterr().out) == ["calc"]

    def test_ping(self, tcp_service, capsys):
        assert client_main(["--address", tcp_service, "--ping"]) == 0
        assert "alive" in capsys.readouterr().out

    def test_missing_method_arg(self, tcp_service, capsys):
        assert client_main(["--address", tcp_service, "--name", "calc"]) == 2

    def test_invalid_json_args(self, tcp_service):
        assert (
            client_main(
                ["--address", tcp_service, "--name", "calc",
                 "--method", "add", "--args", "not-json"]
            )
            == 2
        )

    def test_non_array_args(self, tcp_service):
        assert (
            client_main(
                ["--address", tcp_service, "--name", "calc",
                 "--method", "add", "--args", '{"a": 1}']
            )
            == 2
        )

    def test_render_falls_back_to_repr(self):
        class Odd:
            def __repr__(self):
                return "<odd>"

        assert render(Odd()) == "<odd>"


class TestServerCliParsing:
    def test_parser_requires_bind(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_instantiate(self):
        service = instantiate("repro.bench.mutators", "TreeService")
        assert type(service).__name__ == "TreeService"

    def test_instantiate_missing_attr(self):
        with pytest.raises(ValueError):
            instantiate("repro.bench.mutators", "NoSuchClass")

    def test_instantiate_missing_module(self):
        with pytest.raises(ModuleNotFoundError):
            instantiate("repro.no_such_module", "X")

    def test_cli_end_to_end_subprocess(self, tcp_service):
        """The client CLI as a real subprocess against a live server."""
        completed = subprocess.run(
            [sys.executable, "-m", "repro.nrmi.client_main",
             "--address", tcp_service, "--name", "calc",
             "--method", "add", "--args", "[1, 2]"],
            capture_output=True, text=True, timeout=60,
        )
        assert completed.returncode == 0, completed.stderr
        assert json.loads(completed.stdout) == 3
