"""The by-hand emulation must meet the paper's invariant, and its cost in
lines of code must match Section 5.3.2's accounting."""

import pytest

from repro.bench.manual_restore import (
    ManualTreeService,
    build_shadow,
    count_manual_loc,
    loc_per_scenario,
    manual_call,
)
from repro.bench.mutators import mutator_for
from repro.bench.trees import TreeNode, generate_workload
from repro.core.markers import Remote
from repro.nrmi.config import NRMIConfig


def local_oracle(scenario, size, seed):
    """What a local call would leave the caller observing."""
    workload = generate_workload(scenario, size, seed)
    mutator_for(scenario)(workload.root, seed)
    return workload.visible_data()


@pytest.fixture
def rmi_pair(make_endpoint_pair):
    """Plain call-by-copy endpoints (policy none), as the emulation needs."""
    config = NRMIConfig(policy="none")
    pair = make_endpoint_pair(server_config=config, client_config=config)
    pair.service = pair.serve(ManualTreeService(), name="manual")
    return pair


class TestInvariant:
    """Paper 5.3.2: *all* changes must be visible to the caller."""

    @pytest.mark.parametrize("scenario", ["I", "II", "III"])
    @pytest.mark.parametrize("size", [4, 16, 64])
    def test_manual_call_matches_local_execution(self, rmi_pair, scenario, size):
        for seed in (1, 2, 3):
            workload = generate_workload(scenario, size, seed)
            manual_call(rmi_pair.service, workload, seed)
            assert workload.visible_data() == local_oracle(scenario, size, seed)

    def test_scenario_ii_aliases_track_data_changes(self, rmi_pair):
        workload = generate_workload("II", 32, seed=5)
        oracle = local_oracle("II", 32, 5)
        manual_call(rmi_pair.service, workload, 5)
        _shape, alias_view = workload.visible_data()
        assert alias_view == oracle[1]

    def test_scenario_iii_aliases_track_structure_changes(self, rmi_pair):
        workload = generate_workload("III", 64, seed=6)
        oracle = local_oracle("III", 64, 6)
        manual_call(rmi_pair.service, workload, 6)
        assert workload.visible_data() == oracle

    def test_manual_call_returns_method_result(self, rmi_pair):
        workload = generate_workload("I", 16, seed=7)
        result = manual_call(rmi_pair.service, workload, 7)
        assert isinstance(result, int)
        assert result > 0


class TestShadowTree:
    def test_shadow_is_isomorphic(self):
        workload = generate_workload("III", 32, seed=8)
        shadow = build_shadow(workload.root)
        stack = [(workload.root, shadow)]
        count = 0
        while stack:
            node, shadow_node = stack.pop()
            if node is None:
                assert shadow_node is None
                continue
            assert shadow_node.ref is node
            count += 1
            stack.append((node.left, shadow_node.left))
            stack.append((node.right, shadow_node.right))
        assert count == 32

    def test_shadow_of_empty(self):
        assert build_shadow(None) is None

    def test_shadow_refs_survive_mutation(self):
        workload = generate_workload("III", 16, seed=9)
        original_nodes = set(map(id, workload.nodes_in_order()))
        shadow = build_shadow(workload.root)
        mutator_for("III")(workload.root, 9)
        refs = set()
        stack = [shadow]
        while stack:
            shadow_node = stack.pop()
            if shadow_node is None:
                continue
            refs.add(id(shadow_node.ref))
            stack.append(shadow_node.left)
            stack.append(shadow_node.right)
        assert refs == original_nodes  # shadow still reaches every old node


class TestLocAccounting:
    """The reproduction of the paper's ≈45 / +16 / +35 line counts."""

    def test_sections_present(self):
        sections = count_manual_loc()
        assert set(sections) >= {
            "return-types",
            "server-return",
            "client-update",
            "client-walk",
            "client-shadow-walk",
            "server-shadow",
        }

    def test_scenario_ordering(self):
        loc = loc_per_scenario()
        assert loc["I"] < loc["II"] < loc["III"]

    def test_magnitudes_match_paper(self):
        """Same order of magnitude as the paper's Java counts (Python is
        terser than Java, so exact equality is not expected)."""
        loc = loc_per_scenario()
        assert 15 <= loc["I"] <= 70        # paper: ~45
        assert loc["II"] - loc["I"] >= 5   # paper: +16
        assert loc["III"] - loc["II"] >= 10  # paper: +35

    def test_nrmi_needs_none_of_it(self, make_endpoint_pair):
        """The NRMI version of the same call is zero extra lines."""
        from repro.bench.mutators import TreeService

        pair = make_endpoint_pair()
        service = pair.serve(TreeService(), name="trees")
        workload = generate_workload("III", 32, seed=10)
        service.mutate("III", workload.root, 10)   # that's the whole call
        assert workload.visible_data() == local_oracle("III", 32, 10)
