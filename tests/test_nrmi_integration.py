"""End-to-end NRMI semantics through the full middleware stack."""

import pytest

from repro.core.markers import Remote, Restorable
from repro.errors import NotBoundError, RemoteError, RemoteInvocationError
from repro.nrmi.config import NRMIConfig

from tests.model_helpers import Box, Node, Pair, heap_fingerprint


class EchoService(Remote):
    def identity(self, value):
        return value

    def data_of(self, node):
        return node.data


class MutationService(Remote):
    def set_data(self, node, value):
        node.data = value

    def reverse(self, head):
        previous = None
        while head is not None:
            head.next, previous, head = previous, head, head.next
        return previous

    def extend(self, box):
        box.payload.append(Node("added"))
        return box.payload[-1]

    def swap(self, pair_box):
        pair_box.payload.first, pair_box.payload.second = (
            pair_box.payload.second,
            pair_box.payload.first,
        )

    def raise_key_error(self, key):
        raise KeyError(key)

    def stash(self, node):
        self._kept = node  # stateful server (breaks transparency — by design)

    def mutate_stash(self):
        self._kept.data = "mutated-later"


class TestBasicCalls:
    def test_primitive_roundtrip(self, endpoint_pair):
        service = endpoint_pair.serve(EchoService())
        assert service.identity(41) == 41
        assert service.identity("text") == "text"
        assert service.identity(None) is None

    def test_copy_arg_roundtrip(self, endpoint_pair):
        service = endpoint_pair.serve(EchoService())
        result = service.identity(Pair(1, [2, 3]))
        assert isinstance(result, Pair)
        assert result.second == [2, 3]

    def test_restorable_arg_readable_on_server(self, endpoint_pair):
        service = endpoint_pair.serve(EchoService())
        assert service.data_of(Node("payload")) == "payload"

    def test_multiple_sequential_calls(self, endpoint_pair):
        service = endpoint_pair.serve(MutationService())
        node = Node(0)
        for value in range(5):
            service.set_data(node, value)
            assert node.data == value


class TestCopyRestoreSemantics:
    def test_field_mutation_restored(self, endpoint_pair):
        service = endpoint_pair.serve(MutationService())
        node = Node("before")
        service.set_data(node, "after")
        assert node.data == "after"

    def test_list_reversal_preserves_identity(self, endpoint_pair):
        service = endpoint_pair.serve(MutationService())
        a, b, c = Node("a"), Node("b"), Node("c")
        a.next, b.next = b, c
        new_head = service.reverse(a)
        assert new_head is c
        assert c.next is b and b.next is a and a.next is None

    def test_server_allocated_node_adopted(self, endpoint_pair):
        service = endpoint_pair.serve(MutationService())
        box = Box([Node("existing")])
        added = service.extend(box)
        assert len(box.payload) == 2
        assert box.payload[1].data == "added"
        assert added is box.payload[1]  # result joined the restored graph

    def test_nested_serializable_restored_through_restorable_root(self, endpoint_pair):
        """Parent-object policy: everything reachable is copy-restored."""
        service = endpoint_pair.serve(MutationService())
        pair = Pair("x", "y")  # merely Serializable
        box = Box(pair)        # but the root is Restorable
        service.swap(box)
        assert (pair.first, pair.second) == ("y", "x")
        assert box.payload is pair  # identity untouched

    def test_copy_arg_not_restored(self, endpoint_pair):
        """A bare Serializable argument keeps call-by-copy semantics."""
        service = endpoint_pair.serve(MutationService())

        class PairMutator(Remote):
            def mutate(self, pair):
                pair.first = "server-side"

        mutator = endpoint_pair.serve(PairMutator(), name="mutator")
        pair = Pair("untouched", 2)
        mutator.mutate(pair)
        assert pair.first == "untouched"

    def test_aliases_outside_params_updated(self, endpoint_pair):
        service = endpoint_pair.serve(MutationService())
        shared = Node("shared")
        box = Box([shared])
        alias = shared  # caller-side alias not passed to the call
        service.set_data(box.payload[0], "changed") if False else None
        # mutate through the box instead:

        class DeepMutator(Remote):
            def deep_set(self, box, value):
                box.payload[0].data = value

        deep = endpoint_pair.serve(DeepMutator(), name="deep")
        deep.deep_set(box, "changed")
        assert alias.data == "changed"

    def test_policy_none_config_disables_restore(self, make_endpoint_pair):
        pair = make_endpoint_pair(
            server_config=NRMIConfig(policy="none"),
            client_config=NRMIConfig(policy="none"),
        )
        service = pair.serve(MutationService())
        node = Node("before")
        service.set_data(node, "after")
        assert node.data == "before"  # plain RMI semantics


class TestStatefulServer:
    def test_state_kept_after_call_does_not_propagate(self, endpoint_pair):
        """Copy-restore != call-by-reference exactly when the server keeps
        aliases that outlive the call (paper Section 4.1)."""
        service = endpoint_pair.serve(MutationService())
        node = Node("original")
        service.stash(node)
        service.mutate_stash()  # mutates the server's retained copy
        assert node.data == "original"  # invisible to the caller — by design


class TestRemoteByReference:
    def test_remote_instance_passes_as_stub(self, endpoint_pair):
        class Callback(Remote):
            def __init__(self):
                self.calls = []

            def notify(self, message):
                self.calls.append(message)

        class Notifier(Remote):
            def run(self, callback):
                callback.notify("from-server")
                return "done"

        callback = Callback()
        endpoint_pair.client.bind("cb", callback)  # export on the client
        notifier = endpoint_pair.serve(Notifier(), name="notifier")
        assert notifier.run(callback) == "done"
        assert callback.calls == ["from-server"]  # ran on the CLIENT object

    def test_stub_returned_to_owner_short_circuits(self, endpoint_pair):
        service_impl = EchoService()
        service = endpoint_pair.serve(service_impl, name="echo")
        result = service.identity(service)  # pass the stub back to its owner
        # On the server it resolved to the impl; coming back it's a stub
        # again on the client... whose resolve short-circuits to the impl
        # only on the owning endpoint. The client sees a stub.
        assert result.identity(7) == 7


class TestRemoteErrors:
    def test_remote_exception_carries_type_and_message(self, endpoint_pair):
        service = endpoint_pair.serve(MutationService())
        with pytest.raises(RemoteInvocationError) as excinfo:
            service.raise_key_error("missing")
        assert excinfo.value.exc_type_name == "KeyError"
        assert "missing" in str(excinfo.value)
        assert "raise_key_error" in excinfo.value.remote_traceback

    def test_failed_call_leaves_caller_unchanged(self, endpoint_pair):
        class FailAfterMutate(Remote):
            def go(self, node):
                node.data = "server-mutated"
                raise RuntimeError("late failure")

        service = endpoint_pair.serve(FailAfterMutate())
        node = Node("pristine")
        with pytest.raises(RemoteInvocationError):
            service.go(node)
        assert node.data == "pristine"  # no partial restore on failure

    def test_unknown_method(self, endpoint_pair):
        service = endpoint_pair.serve(EchoService())
        with pytest.raises((RemoteError, RemoteInvocationError)):
            service.no_such_method()

    def test_private_method_refused(self, endpoint_pair):
        endpoint_pair.serve(EchoService())
        with pytest.raises((RemoteError, RemoteInvocationError)):
            endpoint_pair.client.invoke(
                endpoint_pair.client.lookup(
                    endpoint_pair.server.address, "svc"
                ).descriptor,
                "_private",
                (),
            )

    def test_lookup_unbound_name(self, endpoint_pair):
        with pytest.raises((NotBoundError, RemoteInvocationError)):
            endpoint_pair.client.lookup(endpoint_pair.server.address, "ghost")

    def test_bind_non_remote_rejected(self, endpoint_pair):
        with pytest.raises(RemoteError):
            endpoint_pair.server.bind("bad", Pair(1, 2))


class TestConfigMatrix:
    @pytest.mark.parametrize(
        "profile,implementation",
        [("legacy", "portable"), ("modern", "portable"), ("modern", "optimized")],
    )
    def test_restore_correct_under_all_configs(
        self, make_endpoint_pair, profile, implementation
    ):
        config = NRMIConfig(profile=profile, implementation=implementation)
        pair = make_endpoint_pair(server_config=config, client_config=config)
        service = pair.serve(MutationService())
        a, b = Node("a"), Node("b")
        a.next = b
        new_head = service.reverse(a)
        assert new_head is b and b.next is a and a.next is None

    @pytest.mark.parametrize("policy", ["full", "delta"])
    def test_policies_equivalent_states(self, make_endpoint_pair, policy):
        config = NRMIConfig(policy=policy)
        pair = make_endpoint_pair(server_config=config, client_config=config)
        service = pair.serve(MutationService())
        a, b, c = Node("a"), Node("b"), Node("c")
        a.next, b.next = b, c
        service.reverse(a)
        assert heap_fingerprint([c]) == heap_fingerprint([c])
        assert c.next.data == "b" and c.next.next.data == "a"

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            NRMIConfig(profile="jdk9")
        with pytest.raises(ValueError):
            NRMIConfig(implementation="quantum")
        with pytest.raises(ValueError):
            NRMIConfig(policy="telepathy")
        with pytest.raises(ValueError):
            NRMIConfig(profile="legacy", implementation="optimized")
