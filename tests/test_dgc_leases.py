"""Lease-based distributed GC (the Java RMI lease model)."""

import pytest

from repro.nrmi.config import NRMIConfig
from repro.rmi.dgc import DistributedGC
from repro.rmi.export import ExportTable
from repro.util.clock import Clock, ManualClock

from tests.conftest import EndpointPair
from tests.model_helpers import Node


class TestClock:
    def test_system_clock_monotonic(self):
        clock = Clock()
        first = clock.now()
        assert clock.now() >= first

    def test_manual_clock(self):
        clock = ManualClock(start=100.0)
        assert clock.now() == 100.0
        clock.advance(5)
        assert clock.now() == 105.0

    def test_manual_clock_rejects_backwards(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1)


class TestLeases:
    def make(self, lease=10.0):
        clock = ManualClock()
        collected = []
        dgc = DistributedGC(
            on_unreferenced=collected.append,
            lease_seconds=lease,
            clock=clock,
        )
        return dgc, clock, collected

    def test_fresh_lease_not_expired(self):
        dgc, clock, collected = self.make()
        dgc.on_marshal(1)
        clock.advance(5)
        assert dgc.expire_leases() == []
        assert dgc.refcount(1) == 1

    def test_lapsed_lease_expires(self):
        dgc, clock, collected = self.make()
        dgc.on_marshal(1)
        clock.advance(11)
        assert dgc.expire_leases() == [1]
        assert dgc.refcount(1) == 0
        assert collected == [1]

    def test_renew_extends(self):
        dgc, clock, collected = self.make()
        dgc.on_marshal(1)
        clock.advance(8)
        assert dgc.renew(1)
        clock.advance(8)  # 16 total, but renewed at 8
        assert dgc.expire_leases() == []
        clock.advance(3)  # now past 8+10
        assert dgc.expire_leases() == [1]

    def test_renew_unknown_returns_false(self):
        dgc, _clock, _collected = self.make()
        assert not dgc.renew(404)

    def test_marshal_refreshes_lease(self):
        dgc, clock, _collected = self.make()
        dgc.on_marshal(1)
        clock.advance(8)
        dgc.on_marshal(1)  # second reference refreshes
        clock.advance(8)
        assert dgc.expire_leases() == []

    def test_release_clears_lease(self):
        dgc, clock, _collected = self.make()
        dgc.on_marshal(1)
        dgc.release(1)
        clock.advance(100)
        assert dgc.expire_leases() == []

    def test_no_lease_mode_never_expires(self):
        dgc = DistributedGC(lease_seconds=None)
        dgc.on_marshal(1)
        assert dgc.expire_leases() == []
        assert dgc.refcount(1) == 1

    def test_expiry_counted_in_snapshot(self):
        dgc, clock, _collected = self.make()
        dgc.on_marshal(1)
        clock.advance(11)
        dgc.expire_leases()
        assert dgc.snapshot()["total_expired"] == 1


class TestLeasesThroughExportTable:
    def test_expired_object_unexported(self):
        clock = ManualClock()
        table = ExportTable(lease_seconds=5.0, clock=clock)
        node = Node(1)
        object_id = table.export_marshalled(node)
        clock.advance(6)
        table.dgc.expire_leases()
        from repro.errors import NoSuchObjectError

        with pytest.raises(NoSuchObjectError):
            table.get(object_id)

    def test_pinned_object_survives_expiry(self):
        clock = ManualClock()
        table = ExportTable(lease_seconds=5.0, clock=clock)
        service = Node("registry")
        object_id = table.export(service, pin=True)
        table.dgc.on_marshal(object_id)
        clock.advance(6)
        table.dgc.expire_leases()
        assert table.get(object_id) is service


class TestLeasesEndToEnd:
    def test_renew_over_the_wire(self):
        pair = EndpointPair(
            client_config=NRMIConfig(policy="none", lease_seconds=60.0)
        )
        try:
            node = Node(1)
            pointer = pair.client.pointer_to(node)
            # The SERVER holds a pointer into the CLIENT; the server-side
            # holder renews against the client (the owner).
            assert pair.server.renew(pointer)
            pair.client.release(pointer)
            assert not pair.server.renew(pointer)
        finally:
            pair.close()

    def test_sweep_leases_endpoint_api(self):
        pair = EndpointPair(
            client_config=NRMIConfig(policy="none", lease_seconds=60.0)
        )
        try:
            pair.client.pointer_to(Node(1))
            assert pair.client.sweep_leases() == []  # nothing lapsed yet
        finally:
            pair.close()
