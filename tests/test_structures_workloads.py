"""Extension workload families: lists, hash indexes, general graphs.

For every family, NRMI copy-restore must leave the caller's observable
state identical to local execution — the paper's invariant extended to
the structures its introduction motivates.
"""

import pytest

from repro.bench.structures import (
    FAMILIES,
    StructureService,
    generate_structure,
    mutate_structure_family,
)
from repro.nrmi.config import NRMIConfig


def local_oracle(family, size, seed):
    workload = generate_structure(family, size, seed)
    mutate_structure_family(family, workload.root, seed)
    return workload.visible_data()


class TestGeneration:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_deterministic(self, family):
        a = generate_structure(family, 32, 5)
        b = generate_structure(family, 32, 5)
        assert a.visible_data() == b.visible_data()

    @pytest.mark.parametrize("family", FAMILIES)
    def test_aliases_populated(self, family):
        workload = generate_structure(family, 32, 5)
        assert workload.aliases

    def test_list_has_size_cells(self):
        workload = generate_structure("list", 40, 1)
        count = 0
        cell = workload.root
        while cell is not None:
            count += 1
            cell = cell.tail
        assert count == 40

    def test_graph_root_reaches_all(self):
        workload = generate_structure("graph", 30, 2)
        seen = set()
        stack = [workload.root]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.extend(node.edges)
        assert len(seen) == 30

    def test_invalid_family(self):
        with pytest.raises(ValueError):
            generate_structure("queue", 8, 1)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            generate_structure("list", 0, 1)


class TestMutators:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_deterministic_mutation(self, family):
        a = generate_structure(family, 32, 7)
        b = generate_structure(family, 32, 7)
        assert mutate_structure_family(family, a.root, 3) == mutate_structure_family(
            family, b.root, 3
        )
        assert a.visible_data() == b.visible_data()

    @pytest.mark.parametrize("family", FAMILIES)
    def test_mutation_changes_something(self, family):
        workload = generate_structure(family, 32, 7)
        before = workload.visible_data()
        changes = mutate_structure_family(family, workload.root, 3)
        assert changes > 0
        assert workload.visible_data() != before


class TestRemoteEquivalence:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("policy", ["full", "delta"])
    def test_copy_restore_matches_local(self, make_endpoint_pair, family, policy):
        config = NRMIConfig(policy=policy)
        pair = make_endpoint_pair(server_config=config, client_config=config)
        service = pair.serve(StructureService(), name="structures")
        for seed in (11, 12):
            workload = generate_structure(family, 48, seed)
            service.mutate(family, workload.root, seed)
            assert workload.visible_data() == local_oracle(family, 48, seed)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_call_by_copy_drops_mutations(self, make_endpoint_pair, family):
        config = NRMIConfig(policy="none")
        pair = make_endpoint_pair(server_config=config, client_config=config)
        service = pair.serve(StructureService(), name="structures")
        workload = generate_structure(family, 32, 21)
        before = workload.visible_data()
        service.mutate(family, workload.root, 21)
        assert workload.visible_data() == before

    def test_list_alias_sees_detached_update(self, make_endpoint_pair):
        """The list mutator detaches a cell then mutates it: aliases to
        that cell must observe the change (the alias1 case on lists)."""
        config = NRMIConfig(policy="full")
        pair = make_endpoint_pair(server_config=config, client_config=config)
        service = pair.serve(StructureService(), name="structures")
        matched = 0
        for seed in range(6):
            workload = generate_structure("list", 32, seed)
            service.mutate("list", workload.root, seed)
            assert workload.visible_data() == local_oracle("list", 32, seed)
            matched += 1
        assert matched == 6
