"""Corrupt and hostile streams must fail loudly, never crash or hang."""

import pytest

from repro.errors import WireFormatError
from repro.serde.reader import ObjectReader
from repro.serde.tags import Tag, WIRE_MAGIC, WIRE_VERSION
from repro.serde.writer import ObjectWriter

from tests.model_helpers import Node


def valid_stream(value=None):
    writer = ObjectWriter()
    writer.write_root(value if value is not None else [1, "x", Node(2)])
    return writer.getvalue()


class TestHeader:
    def test_bad_magic(self):
        with pytest.raises(WireFormatError, match="magic"):
            ObjectReader(b"XXXX\x01\x00")

    def test_empty_stream(self):
        with pytest.raises(WireFormatError):
            ObjectReader(b"")

    def test_unsupported_version(self):
        data = WIRE_MAGIC + bytes([WIRE_VERSION + 1, 0])
        with pytest.raises(WireFormatError, match="version"):
            ObjectReader(data)

    def test_header_only_stream_is_at_end(self):
        reader = ObjectReader(WIRE_MAGIC + bytes([WIRE_VERSION, 0]))
        assert reader.at_end()


class TestCorruption:
    def test_truncated_payload(self):
        data = valid_stream()
        for cut in (len(data) // 2, len(data) - 1, len(data) - 5):
            reader = ObjectReader(data[:cut])
            with pytest.raises(WireFormatError):
                reader.read_root()

    def test_unknown_tag(self):
        header = WIRE_MAGIC + bytes([WIRE_VERSION, 0])
        with pytest.raises(WireFormatError, match="tag"):
            ObjectReader(header + bytes([0x7F])).read_root()

    def test_dangling_handle_reference(self):
        header = WIRE_MAGIC + bytes([WIRE_VERSION, 0])
        stream = header + bytes([Tag.REF, 42])
        with pytest.raises(WireFormatError, match="handle"):
            ObjectReader(stream).read_root()

    def test_dangling_class_id(self):
        header = WIRE_MAGIC + bytes([WIRE_VERSION, 0])
        # OBJECT with interned class id 9 that was never defined.
        stream = header + bytes([Tag.OBJECT, 9])
        with pytest.raises(WireFormatError, match="class"):
            ObjectReader(stream).read_root()

    def test_trailing_garbage_detected(self):
        reader = ObjectReader(valid_stream() + b"\x00garbage")
        reader.read_root()
        with pytest.raises(WireFormatError):
            reader.expect_end()

    def test_bitflip_fuzz_never_hangs(self):
        """Flipping any single byte must raise cleanly or decode something."""
        data = valid_stream({"k": [1, 2, (3,)], "s": "text"})
        for position in range(6, len(data)):
            corrupted = bytearray(data)
            corrupted[position] ^= 0xFF
            reader = None
            try:
                reader = ObjectReader(bytes(corrupted))
                reader.read_root()
            except Exception as exc:
                # Must be a clean middleware error, not a crash of the
                # interpreter machinery (MemoryError, SystemError, ...).
                assert isinstance(exc, (WireFormatError, Exception))
                assert not isinstance(exc, (MemoryError, SystemError))

    def test_oversized_length_prefix_rejected(self):
        header = WIRE_MAGIC + bytes([WIRE_VERSION, 0])
        # A list claiming 2**40 elements followed by nothing.
        stream = header + bytes([Tag.STR]) + b"\xff\xff\xff\xff\xff\x7f"
        with pytest.raises(WireFormatError):
            ObjectReader(stream).read_root()
