"""Step 4: linear-map match-up validation."""

import pytest

from repro.core.matching import MatchResult, match_maps
from repro.errors import LinearMapMismatchError, RestoreError

from tests.model_helpers import Node, Pair


class TestMatchMaps:
    def test_empty_maps(self):
        match = match_maps([], [])
        assert len(match) == 0

    def test_positional_pairing(self):
        originals = [Node(1), Node(2)]
        modifieds = [Node(10), Node(20)]
        match = match_maps(originals, modifieds)
        assert match.modified_to_original[modifieds[0]] is originals[0]
        assert match.modified_to_original[modifieds[1]] is originals[1]

    def test_pairs_iteration(self):
        originals, modifieds = [Node(1)], [Node(9)]
        match = match_maps(originals, modifieds)
        assert list(match.pairs()) == [(originals[0], modifieds[0])]

    def test_length_mismatch_raises(self):
        with pytest.raises(LinearMapMismatchError) as excinfo:
            match_maps([Node(1)], [Node(1), Node(2)])
        assert excinfo.value.expected == 1
        assert excinfo.value.received == 2

    def test_type_mismatch_raises(self):
        with pytest.raises(RestoreError, match="position 1"):
            match_maps([Node(1), Node(2)], [Node(1), Pair(1, 2)])

    def test_container_types_checked_exactly(self):
        with pytest.raises(RestoreError):
            match_maps([[1]], [{1: 2}])

    def test_identical_object_allowed(self):
        """Delta restore resolves unchanged entries to the originals."""
        node = Node(1)
        match = match_maps([node], [node])
        assert match.modified_to_original[node] is node

    def test_mixed_kinds_align(self):
        originals = [Node(1), [1], {"k": 1}, {1}]
        modifieds = [Node(2), [2], {"k": 2}, {2}]
        match = match_maps(originals, modifieds)
        assert len(match) == 4
