"""Step 4: linear-map match-up validation."""

import pytest

from repro.core.matching import MatchResult, match_maps, match_sparse
from repro.errors import LinearMapMismatchError, RestoreError

from tests.model_helpers import Node, Pair


class TestMatchMaps:
    def test_empty_maps(self):
        match = match_maps([], [])
        assert len(match) == 0

    def test_positional_pairing(self):
        originals = [Node(1), Node(2)]
        modifieds = [Node(10), Node(20)]
        match = match_maps(originals, modifieds)
        assert match.modified_to_original[modifieds[0]] is originals[0]
        assert match.modified_to_original[modifieds[1]] is originals[1]

    def test_pairs_iteration(self):
        originals, modifieds = [Node(1)], [Node(9)]
        match = match_maps(originals, modifieds)
        assert list(match.pairs()) == [(originals[0], modifieds[0])]

    def test_length_mismatch_raises(self):
        with pytest.raises(LinearMapMismatchError) as excinfo:
            match_maps([Node(1)], [Node(1), Node(2)])
        assert excinfo.value.expected == 1
        assert excinfo.value.received == 2

    def test_type_mismatch_raises(self):
        with pytest.raises(RestoreError, match="position 1"):
            match_maps([Node(1), Node(2)], [Node(1), Pair(1, 2)])

    def test_container_types_checked_exactly(self):
        with pytest.raises(RestoreError):
            match_maps([[1]], [{1: 2}])

    def test_identical_object_allowed(self):
        """Delta restore resolves unchanged entries to the originals."""
        node = Node(1)
        match = match_maps([node], [node])
        assert match.modified_to_original[node] is node

    def test_mixed_kinds_align(self):
        originals = [Node(1), [1], {"k": 1}, {1}]
        modifieds = [Node(2), [2], {"k": 2}, {2}]
        match = match_maps(originals, modifieds)
        assert len(match) == 4


class TestMatchSparse:
    """Dirty-slot replies match only the transmitted positions."""

    def test_no_dirty_slots_matches_nothing(self):
        match = match_sparse([Node(1), Node(2)], [], [])
        assert len(match) == 0

    def test_subset_pairs_with_indexed_originals(self):
        originals = [Node(1), Node(2), Node(3)]
        modifieds = [Node(20), Node(30)]
        match = match_sparse(originals, [1, 2], modifieds)
        assert match.modified_to_original[modifieds[0]] is originals[1]
        assert match.modified_to_original[modifieds[1]] is originals[2]
        # Clean originals never enter the match.
        assert originals[0] not in list(dict(match.pairs()))

    def test_count_mismatch_raises(self):
        with pytest.raises(LinearMapMismatchError):
            match_sparse([Node(1), Node(2)], [0, 1], [Node(9)])

    def test_out_of_bounds_index_raises(self):
        with pytest.raises(RestoreError, match="outside retained list"):
            match_sparse([Node(1)], [1], [Node(9)])

    def test_non_increasing_indices_raise(self):
        with pytest.raises(RestoreError, match="strictly increasing"):
            match_sparse([Node(1), Node(2)], [1, 1], [Node(9), Node(8)])
        with pytest.raises(RestoreError, match="strictly increasing"):
            match_sparse([Node(1), Node(2)], [1, 0], [Node(9), Node(8)])

    def test_type_mismatch_at_dirty_position_raises(self):
        with pytest.raises(RestoreError, match="position"):
            match_sparse([Node(1), Node(2)], [1], [Pair(1, 2)])
