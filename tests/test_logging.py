"""Logging conventions and diagnostic records."""

import logging

import pytest

from repro.core.markers import Remote
from repro.errors import RemoteInvocationError
from repro.util.logging import enable_debug_logging, get_logger


class TestLoggerNaming:
    def test_namespaced(self):
        assert get_logger("rmi.dispatcher").name == "repro.rmi.dispatcher"

    def test_already_namespaced_untouched(self):
        assert get_logger("repro.custom").name == "repro.custom"

    def test_enable_debug_logging_attaches_handler(self):
        root = logging.getLogger("repro")
        before = list(root.handlers)
        handler = enable_debug_logging()
        try:
            assert handler in root.handlers
        finally:
            root.removeHandler(handler)
            assert root.handlers == before


class TestDiagnostics:
    def test_remote_exception_logged_at_debug(self, endpoint_pair, caplog):
        class Failing(Remote):
            def boom(self):
                raise ValueError("logged failure")

        service = endpoint_pair.serve(Failing())
        with caplog.at_level(logging.DEBUG, logger="repro.nrmi.invocation"):
            with pytest.raises(RemoteInvocationError):
                service.boom()
        assert any("logged failure" in record.message for record in caplog.records)

    def test_middleware_error_logged(self, endpoint_pair, caplog):
        class Plain(Remote):
            def ok(self):
                return 1

        service = endpoint_pair.serve(Plain())
        with caplog.at_level(logging.DEBUG, logger="repro.rmi.dispatcher"):
            with pytest.raises(Exception):
                service.not_a_method()
        assert any(
            "not_a_method" in record.message for record in caplog.records
        )

    def test_silent_at_default_level(self, endpoint_pair, caplog):
        class Quiet(Remote):
            def ok(self):
                return 1

        service = endpoint_pair.serve(Quiet())
        with caplog.at_level(logging.WARNING, logger="repro"):
            service.ok()
        assert caplog.records == []
