"""Shared-memory transport: ring primitives, shm:// duplex, lifecycle.

The ring tests drive :mod:`repro.util.ring` directly over a plain
bytearray — wrap-around at every (aligned) offset, full-ring
backpressure, the doorbell waiting flags, and a two-thread byte-exact
stress run. The transport tests stand up real :class:`ShmServer`
instances: round trips plain and pipelined, frames larger than the ring,
park/wake when the client outlasts its spin budget, idle-CPU parking,
and the rendezvous-socket lifecycle (live-server refusal, stale-socket
reclaim, unlink-on-stop, and the inode guard that keeps a late-stopping
predecessor from unlinking its successor).
"""

import os
import random
import socket
import struct
import threading
import time

import pytest

from repro.core.markers import Remote
from repro.errors import TransportError
from repro.transport.resolver import ChannelResolver
from repro.transport.shm import (
    PipelinedShmChannel,
    ShmChannel,
    ShmServer,
    handshake_path,
    shm_supported,
)
from repro.util.ring import (
    CTRL_BYTES,
    RECORD_HEADER,
    consumer_view,
    init_ring,
    producer_view,
    ring_region_size,
    yield_cpu,
)

pytestmark = pytest.mark.skipif(
    not shm_supported(), reason="platform lacks AF_UNIX fd passing"
)


def make_ring(capacity: int):
    buffer = bytearray(ring_region_size(capacity))
    init_ring(buffer, 0, capacity)
    return producer_view(buffer, 0, capacity), consumer_view(buffer, 0, capacity)


def read_all(rx, chunk: int = 4096) -> bytes:
    out = bytearray()
    buf = bytearray(chunk)
    while True:
        got = rx.try_read_into(buf)
        if not got:
            return bytes(out)
        out += buf[:got]


class TestRingPrimitives:
    def test_simple_roundtrip(self):
        tx, rx = make_ring(256)
        assert tx.try_write(b"hello ring") == 10
        assert rx.readable()
        assert read_all(rx) == b"hello ring"
        assert not rx.readable()

    def test_empty_ring_reads_nothing(self):
        _, rx = make_ring(256)
        assert not rx.readable()
        assert rx.pending_bytes() == 0
        assert rx.try_read_into(bytearray(16)) == 0

    def test_capacity_must_be_power_of_two(self):
        for bad in (0, 63, 100, 257):
            with pytest.raises(ValueError):
                make_ring(bad)

    def test_wraparound_at_every_aligned_offset(self):
        """March head/tail past the buffer edge at every 8-aligned
        position a record can start from; the stream must stay exact."""
        capacity = 256
        tx, rx = make_ring(capacity)
        rng = random.Random(7)
        written = bytearray()
        echoed = bytearray()
        # Odd-sized chunks so record padding shifts the start offset by
        # every multiple of the alignment over enough iterations.
        for step in range(400):
            chunk = bytes([step & 0xFF]) * rng.randrange(1, 61)
            assert tx.try_write(chunk) == len(chunk)
            written += chunk
            echoed += read_all(rx)
        assert echoed == written

    def test_full_ring_backpressure_and_drain(self):
        capacity = 256
        tx, rx = make_ring(capacity)
        blob = b"z" * 1024
        accepted = tx.try_write(blob)
        # The ring takes what fits (minus headers), never more.
        assert 0 < accepted < capacity
        assert tx.try_write(b"more") == 0
        assert not tx.writable()
        assert read_all(rx) == blob[:accepted]
        assert tx.writable()
        assert tx.try_write(b"more") == 4
        assert read_all(rx) == b"more"

    def test_large_stream_chunks_through_small_ring(self):
        tx, rx = make_ring(128)
        payload = bytes(range(256)) * 64  # 16 KiB through a 128 B ring
        out = bytearray()
        sent = 0
        view = memoryview(payload)
        while len(out) < len(payload):
            sent += tx.try_write(view[sent:])
            out += read_all(rx)
        assert bytes(out) == payload

    def test_pending_bytes_is_an_upper_bound(self):
        tx, rx = make_ring(256)
        assert rx.pending_bytes() == 0
        tx.try_write(b"abc")
        # 3 payload bytes, but the bound counts header + padding too.
        assert rx.pending_bytes() >= 3
        assert rx.pending_bytes() <= 3 + RECORD_HEADER + 8
        got = bytearray(1)
        rx.try_read_into(got)  # partially consume the record
        assert rx.pending_bytes() >= 2
        assert read_all(rx) == b"bc"
        assert rx.pending_bytes() == 0

    def test_waiting_flags_cross_sides(self):
        tx, rx = make_ring(256)
        assert not tx.peer_waiting and not rx.peer_waiting
        rx.set_waiting()
        assert tx.peer_waiting  # producer must ring the doorbell now
        rx.clear_waiting()
        assert not tx.peer_waiting
        tx.set_waiting()
        assert rx.peer_waiting  # consumer must ring back on free space
        tx.clear_waiting()
        assert not rx.peer_waiting

    def test_two_thread_byte_exact_stress(self):
        capacity = 4096
        tx, rx = make_ring(capacity)
        rng = random.Random(99)
        payload = bytes(rng.randrange(256) for _ in range(200_000))
        received = bytearray()
        failures = []
        abort = threading.Event()

        def producer():
            view = memoryview(payload)
            sent = 0
            try:
                while sent < len(view) and not abort.is_set():
                    wrote = tx.try_write(view[sent : sent + rng.randrange(1, 7000)])
                    if wrote:
                        sent += wrote
                    else:
                        yield_cpu()
            except Exception as exc:  # pragma: no cover - debug aid
                failures.append(exc)
                abort.set()

        def consumer():
            buf = bytearray(1500)
            try:
                while len(received) < len(payload) and not abort.is_set():
                    got = rx.try_read_into(buf)
                    if got:
                        received.extend(buf[:got])
                    else:
                        yield_cpu()
            except Exception as exc:  # pragma: no cover - debug aid
                failures.append(exc)
                abort.set()

        threads = [
            threading.Thread(target=producer),
            threading.Thread(target=consumer),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not failures
        assert not any(thread.is_alive() for thread in threads)
        assert bytes(received) == payload

    def test_corrupt_record_length_detected(self):
        """A record length no producer can write (torn cross-process read
        or trampled control block) must fail the read, not desync or
        spin the consumer."""
        capacity = 256
        buffer = bytearray(ring_region_size(capacity))
        init_ring(buffer, 0, capacity)
        tx = producer_view(buffer, 0, capacity)
        rx = consumer_view(buffer, 0, capacity)
        tx.try_write(b"hello")
        # Trample the record's length field (first u32 of the data area).
        for bogus in (0, capacity, 0x7FFFFFFF):
            struct.pack_into("<I", buffer, CTRL_BYTES, bogus)
            with pytest.raises(OSError, match="corrupt record length"):
                rx.try_read_into(bytearray(16))


def echo_handler(request: bytes) -> bytes:
    return b"echo:" + bytes(request)


class TestShmTransport:
    def test_roundtrip(self):
        with ShmServer(echo_handler) as server:
            channel = ShmChannel(server.name)
            try:
                assert channel.request(b"ping") == b"echo:ping"
                for index in range(50):
                    payload = f"msg-{index}".encode()
                    assert channel.request(payload) == b"echo:" + payload
            finally:
                channel.close()

    def test_frame_larger_than_ring_flows_under_backpressure(self):
        # 64 KiB rings, a 1 MiB frame: both directions must chunk the
        # stream into records and move it under flow control.
        with ShmServer(echo_handler, capacity=1 << 16) as server:
            channel = ShmChannel(server.name)
            try:
                payload = os.urandom(1 << 20)
                assert channel.request(payload) == b"echo:" + payload
            finally:
                channel.close()

    def test_pipelined_concurrent_callers(self):
        with ShmServer(echo_handler) as server:
            channel = PipelinedShmChannel(server.name)
            errors = []

            def worker(worker_id: int):
                try:
                    for index in range(25):
                        payload = f"w{worker_id}-{index}".encode()
                        reply = channel.request(payload)
                        assert reply == b"echo:" + payload
                except Exception as exc:  # pragma: no cover - debug aid
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(n,)) for n in range(4)
            ]
            try:
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=30.0)
                assert not errors
            finally:
                channel.close()

    def test_client_parks_on_doorbell_and_wakes(self):
        # The handler outlasts any realistic spin budget, so the client
        # must park on the doorbell fd and be woken by the reply's byte.
        def slow(request: bytes) -> bytes:
            time.sleep(0.08)
            return b"late:" + bytes(request)

        with ShmServer(slow) as server:
            channel = ShmChannel(server.name, spin=10)
            try:
                assert channel.request(b"x") == b"late:x"
            finally:
                channel.close()

    def test_reconnect_after_channel_close(self):
        with ShmServer(echo_handler) as server:
            first = ShmChannel(server.name)
            assert first.request(b"one") == b"echo:one"
            first.close()
            second = ShmChannel(server.name)
            try:
                assert second.request(b"two") == b"echo:two"
            finally:
                second.close()

    def test_idle_connection_burns_no_cpu(self):
        """After the linger window expires both sides must be parked in
        select — near-zero process CPU while the connection idles."""
        from repro.transport.netloop import StagedStreamServer

        with ShmServer(echo_handler) as server:
            channel = ShmChannel(server.name)
            try:
                assert channel.request(b"warm") == b"echo:warm"
                # Let the net thread's linger poll expire and re-park.
                time.sleep(10 * StagedStreamServer.DOORBELL_LINGER_SECONDS + 0.05)
                cpu_before = time.process_time()
                wall_before = time.monotonic()
                time.sleep(0.8)
                cpu_spent = time.process_time() - cpu_before
                wall = time.monotonic() - wall_before
                # Generous budget for suite noise; a busy-polling loop
                # would burn ~100% of the window, not a few percent.
                assert cpu_spent < 0.25 * wall, (
                    f"idle shm connection used {cpu_spent:.3f}s CPU "
                    f"over {wall:.3f}s wall"
                )
                # Still alive after re-parking.
                assert channel.request(b"again") == b"echo:again"
            finally:
                channel.close()

    def test_client_vanishing_mid_handshake_keeps_server_alive(self):
        """A client that connects and dies before reading the segment fd
        makes ``send_fds`` fail mid-handshake; that must reject only the
        one connection — not escape (e.g. as ``BufferError`` from
        closing a still-viewed mmap) and kill the net thread."""
        with ShmServer(echo_handler) as server:
            for _ in range(5):
                ghost = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                ghost.connect(server.path)
                ghost.close()  # gone before the handshake lands
            time.sleep(0.1)  # let the net thread chew through the ghosts
            channel = ShmChannel(server.name)
            try:
                assert channel.request(b"survivor") == b"echo:survivor"
            finally:
                channel.close()

    def test_recv_caps_at_bufsize(self):
        """The non-blocking ``recv`` obeys socket semantics: at most
        *bufsize* bytes per call, residue delivered by later calls."""
        from repro.transport.shm import _RingDuplex
        from repro.util.ring import ring_region_size as region

        capacity = 4096
        buffer = bytearray(2 * region(capacity))
        init_ring(buffer, 0, capacity)
        init_ring(buffer, region(capacity), capacity)
        left, right = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
        sender = _RingDuplex(
            buffer,
            left,
            consumer_view(buffer, region(capacity), capacity),
            producer_view(buffer, 0, capacity),
        )
        receiver = _RingDuplex(
            buffer,
            right,
            consumer_view(buffer, 0, capacity),
            producer_view(buffer, region(capacity), capacity),
        )
        try:
            payload = bytes(range(256)) * 8  # 2 KiB across several records
            sender.sendall(payload)
            got = bytearray()
            while len(got) < len(payload):
                chunk = receiver.recv(64)
                assert 0 < len(chunk) <= 64
                got += chunk
            assert bytes(got) == payload
            with pytest.raises(BlockingIOError):
                receiver.recv(64)
        finally:
            sender.close()
            receiver.close()

    def test_lost_doorbell_backstop_recovers(self, monkeypatch):
        """With every doorbell byte suppressed (the worst case of the
        cross-process store→load race) a round trip must still complete
        via the bounded-park re-checks, just slower."""
        from repro.transport.shm import _RingDuplex

        with ShmServer(echo_handler) as server:
            monkeypatch.setattr(_RingDuplex, "_ring_peer", lambda self: None)
            channel = ShmChannel(server.name, timeout=5.0, spin=10)
            try:
                assert channel.request(b"quiet") == b"echo:quiet"
            finally:
                channel.close()


class TestShmLifecycle:
    def test_live_server_refuses_rebind(self):
        with ShmServer(echo_handler) as server:
            with pytest.raises(TransportError, match="in use"):
                ShmServer(echo_handler, name=server.name)

    def test_stop_unlinks_rendezvous_socket(self):
        server = ShmServer(echo_handler)
        path = server.path
        assert os.path.exists(path)
        server.stop(grace=2.0)
        assert not os.path.exists(path)

    def test_stale_socket_is_reclaimed(self):
        name = "stale-reclaim-test"
        path = handshake_path(name)
        # A dead predecessor's leftover: a bound socket nobody listens on.
        leftover = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            leftover.bind(path)
        finally:
            leftover.close()
        assert os.path.exists(path)
        server = ShmServer(echo_handler, name=name)
        try:
            channel = ShmChannel(name)
            try:
                assert channel.request(b"hi") == b"echo:hi"
            finally:
                channel.close()
        finally:
            server.stop(grace=2.0)
        assert not os.path.exists(path)

    def test_successor_rebinds_after_stop(self):
        name = "successor-test"
        first = ShmServer(echo_handler, name=name)
        first.stop(grace=2.0)
        second = ShmServer(echo_handler, name=name)
        try:
            channel = ShmChannel(name)
            try:
                assert channel.request(b"hello") == b"echo:hello"
            finally:
                channel.close()
        finally:
            second.stop(grace=2.0)

    def test_late_stop_never_unlinks_successor(self):
        """Inode guard: a predecessor stopping *after* its path was
        reclaimed and rebound must leave the successor's socket alone."""
        name = "inode-guard-test"
        first = ShmServer(echo_handler, name=name)
        # Simulate the crashed-predecessor path going stale + reclaimed:
        # the successor rebinds the same path with a fresh inode.
        os.unlink(first.path)
        second = ShmServer(echo_handler, name=name)
        try:
            first.stop(grace=2.0)  # late stop; must not unlink
            assert os.path.exists(second.path)
            channel = ShmChannel(name)
            try:
                assert channel.request(b"still here") == b"echo:still here"
            finally:
                channel.close()
        finally:
            second.stop(grace=2.0)

    def test_bind_waits_for_endpoint_lock(self):
        """Reclaim-and-bind runs under the endpoint lock, so concurrent
        starters serialize instead of racing probe→unlink→bind (which
        could orphan the winner's listener)."""
        fcntl = pytest.importorskip("fcntl")
        name = "lock-serialize-test"
        path = handshake_path(name)
        lock_fd = os.open(path + ".lock", os.O_RDWR | os.O_CREAT, 0o600)
        fcntl.flock(lock_fd, fcntl.LOCK_EX)
        started = threading.Event()
        server_box = {}

        def start_server():
            server_box["server"] = ShmServer(echo_handler, name=name)
            started.set()

        thread = threading.Thread(target=start_server)
        thread.start()
        try:
            assert not started.wait(0.3), "bind did not wait for the lock"
            fcntl.flock(lock_fd, fcntl.LOCK_UN)
            assert started.wait(5.0), "bind never acquired the freed lock"
        finally:
            os.close(lock_fd)
            thread.join(timeout=5.0)
            server = server_box.get("server")
            if server is not None:
                server.stop(grace=2.0)

    def test_capacity_validation(self):
        with pytest.raises(TransportError, match="power of two"):
            ShmServer(echo_handler, capacity=5000)

    def test_resolver_opens_shm_scheme(self):
        with ShmServer(echo_handler) as server:
            resolver = ChannelResolver()
            try:
                channel = resolver.resolve(server.address)
                assert channel.request(b"via-resolver") == b"echo:via-resolver"
                # Cached: same channel object on re-resolve.
                assert resolver.resolve(server.address) is channel
            finally:
                resolver.close_all()

    def test_resolver_rejects_malformed_shm_address(self):
        resolver = ChannelResolver()
        with pytest.raises(TransportError, match="malformed shm"):
            resolver.resolve("shm://")


class TestRingZeroCopy:
    """reserve/commit producer API and peek_record/consume borrow API."""

    def test_reserve_commit_roundtrip(self):
        tx, rx = make_ring(256)
        view = tx.reserve(16)
        assert len(view) == 16
        view[:5] = b"hello"
        tx.commit(5)
        assert read_all(rx) == b"hello"

    def test_reserve_commit_at_every_aligned_wraparound_offset(self):
        """March the in-place producer past the buffer edge from every
        8-aligned start offset; the committed stream must stay exact
        — and byte-identical to what try_write would have produced."""
        capacity = 256
        tx, rx = make_ring(capacity)
        rng = random.Random(11)
        written = bytearray()
        echoed = bytearray()
        for step in range(400):
            chunk = bytes([step & 0xFF]) * rng.randrange(1, 61)
            view = tx.reserve(len(chunk))
            assert view is not None
            take = min(len(view), len(chunk))
            view[:take] = chunk[:take]
            tx.commit(take)
            written += chunk[:take]
            echoed += read_all(rx)
        assert echoed == written

    def test_reserve_grant_clips_to_contiguous_tail(self):
        """A reservation never spans the buffer edge: the grant is the
        largest aligned span before the edge, not the requested size —
        the caller spills the remainder through copied records."""
        capacity = 256
        tx, rx = make_ring(capacity)
        # An empty ring at offset 0: the whole data area minus header.
        view = tx.reserve(10_000)
        assert len(view) == ((capacity - RECORD_HEADER) // 8) * 8
        tx.abort()
        # Move the cursor mid-ring so the contiguous tail shrinks.
        tx.try_write(b"x" * 100)
        assert read_all(rx) == b"x" * 100
        view = tx.reserve(10_000)
        assert view is not None
        assert len(view) < capacity - RECORD_HEADER
        assert len(view) % 8 == 0
        granted = len(view)
        view[:granted] = b"y" * granted
        tx.commit(granted)
        assert read_all(rx) == b"y" * granted

    def test_abort_after_reserve_leaves_stream_intact(self):
        tx, rx = make_ring(256)
        assert tx.try_write(b"before") == 6
        view = tx.reserve(32)
        view[:7] = b"garbage"  # scribbled, never published
        tx.abort()
        assert tx.try_write(b"after") == 5
        assert read_all(rx) == b"beforeafter"

    def test_commit_zero_is_abort(self):
        tx, rx = make_ring(256)
        view = tx.reserve(16)
        view[:4] = b"junk"
        tx.commit(0)
        assert not rx.readable()
        # The reservation is over: a fresh one is legal.
        view = tx.reserve(8)
        view[:2] = b"ok"
        tx.commit(2)
        assert read_all(rx) == b"ok"

    def test_reservation_excludes_copy_writes_and_double_reserve(self):
        tx, _ = make_ring(256)
        tx.reserve(8)
        with pytest.raises(RuntimeError, match="reservation"):
            tx.try_write(b"nope")
        with pytest.raises(RuntimeError, match="reservation"):
            tx.reserve(8)
        tx.abort()
        assert tx.try_write(b"ok") == 2

    def test_commit_beyond_grant_rejected(self):
        tx, _ = make_ring(256)
        view = tx.reserve(16)
        with pytest.raises(ValueError, match="grant"):
            tx.commit(len(view) + 1)
        tx.abort()

    def test_commit_invalidates_reserved_view(self):
        tx, _ = make_ring(256)
        view = tx.reserve(16)
        view[:2] = b"ab"
        tx.commit(2)
        with pytest.raises(ValueError):
            view[0] = 0  # released by commit, by design

    def test_reserve_backpressure_when_full(self):
        tx, rx = make_ring(256)
        blob = b"z" * 1024
        tx.try_write(blob)
        assert tx.reserve(8) is None  # no room: not even a minimal record
        read_all(rx)
        assert tx.reserve(8) is not None
        tx.abort()

    def test_peek_consume_borrow_roundtrip(self):
        tx, rx = make_ring(256)
        tx.try_write(b"first")
        tx.try_write(b"second")
        view = rx.peek_record()
        assert bytes(view) == b"first"
        rx.consume()
        view = rx.peek_record()
        assert bytes(view) == b"second"
        rx.consume()
        assert rx.peek_record() is None

    def test_partial_consume_keeps_remainder_borrowable(self):
        tx, rx = make_ring(256)
        tx.try_write(b"abcdef")
        view = rx.peek_record()
        assert bytes(view) == b"abcdef"
        rx.consume(2)
        view = rx.peek_record()
        assert bytes(view) == b"cdef"
        rx.consume()
        assert not rx.readable()

    def test_consume_zero_releases_without_advancing(self):
        """The copy-path fallback: release the borrow, re-read the same
        bytes through the copying reader."""
        tx, rx = make_ring(256)
        tx.try_write(b"stay")
        view = rx.peek_record()
        assert bytes(view) == b"stay"
        rx.consume(0)
        with pytest.raises(ValueError):
            view[0]  # released: an escaped reference fails fast
        assert read_all(rx) == b"stay"

    def test_borrow_excludes_copy_reads_and_double_borrow(self):
        tx, rx = make_ring(256)
        tx.try_write(b"data")
        rx.peek_record()
        with pytest.raises(RuntimeError, match="borrow"):
            rx.try_read_into(bytearray(16))
        with pytest.raises(RuntimeError, match="borrow"):
            rx.peek_record()
        rx.consume()

    def test_borrow_pins_span_against_producer(self):
        """While a borrow is live the producer must not reclaim the
        span: head only advances at consume."""
        capacity = 256
        tx, rx = make_ring(capacity)
        payload = b"p" * 64
        tx.try_write(payload)
        view = rx.peek_record()
        free_before = tx.free_bytes()
        # Fill the rest of the ring; the borrowed record's span stays out
        # of the free pool until consume.
        filler = b"f" * capacity
        accepted = tx.try_write(filler)
        assert accepted <= free_before
        assert bytes(view) == payload
        rx.consume()
        assert read_all(rx) == filler[:accepted]

    def test_two_thread_mixed_producer_stress_byte_identity(self):
        """Producer alternates randomly between try_write (copy) and
        reserve/commit (in-place); the consumer's stream must equal the
        payload byte-for-byte — the two paths are interchangeable."""
        capacity = 4096
        tx, rx = make_ring(capacity)
        rng = random.Random(1234)
        payload = bytes(rng.randrange(256) for _ in range(200_000))
        received = bytearray()
        failures = []
        abort = threading.Event()

        def producer():
            view = memoryview(payload)
            sent = 0
            try:
                while sent < len(view) and not abort.is_set():
                    chunk = view[sent : sent + rng.randrange(1, 7000)]
                    if rng.randrange(2):
                        wrote = tx.try_write(chunk)
                    else:
                        grant = tx.reserve(len(chunk))
                        if grant is None:
                            wrote = 0
                        else:
                            wrote = min(len(grant), len(chunk))
                            grant[:wrote] = chunk[:wrote]
                            tx.commit(wrote)
                    if wrote:
                        sent += wrote
                    else:
                        yield_cpu()
            except Exception as exc:  # pragma: no cover - debug aid
                failures.append(exc)
                abort.set()

        def consumer():
            buf = bytearray(1500)
            try:
                while len(received) < len(payload) and not abort.is_set():
                    if rng_consumer.randrange(2):
                        got = rx.try_read_into(buf)
                        if got:
                            received.extend(buf[:got])
                        else:
                            yield_cpu()
                    else:
                        view = rx.peek_record()
                        if view is None:
                            yield_cpu()
                        else:
                            received.extend(view)
                            rx.consume()
            except Exception as exc:  # pragma: no cover - debug aid
                failures.append(exc)
                abort.set()

        rng_consumer = random.Random(5678)
        threads = [
            threading.Thread(target=producer),
            threading.Thread(target=consumer),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not failures
        assert not any(thread.is_alive() for thread in threads)
        assert bytes(received) == payload


class TestInPlaceFrames:
    """InPlaceFrameWriter: header backfill, spill handoff, rollback."""

    def _ring_frame(self, capacity=256, request=64):
        tx, rx = make_ring(capacity)
        view = tx.reserve(request)
        return tx, rx, view

    def test_frame_fits_reservation(self):
        from repro.transport.framing import InPlaceFrameWriter

        tx, rx, view = self._ring_frame()
        frame = InPlaceFrameWriter(view)
        frame.writer.write_bytes(b"body-bytes")
        in_place, spill = frame.finish()
        assert spill is None
        assert in_place == 4 + 10
        tx.commit(in_place)
        record = read_all(rx)
        assert record == struct.pack(">I", 10) + b"body-bytes"

    def test_frame_spills_past_reservation(self):
        from repro.transport.framing import InPlaceFrameWriter

        tx, rx, view = self._ring_frame(capacity=1024, request=16)
        grant = len(view)
        frame = InPlaceFrameWriter(view)
        body = bytes(range(200))
        frame.writer.write_bytes(body)
        in_place, spill = frame.finish()
        assert in_place == grant
        assert spill is not None
        assert in_place + len(spill) == 4 + len(body)
        tx.commit(in_place)
        remainder = memoryview(bytes(spill))
        stream = bytearray(read_all(rx))
        while len(remainder):
            wrote = tx.try_write(remainder)
            remainder = remainder[wrote:]
            stream += read_all(rx)
        assert bytes(stream) == struct.pack(">I", len(body)) + body

    def test_frame_stream_is_wire_identical_with_and_without_spill(self):
        from repro.transport.framing import InPlaceFrameWriter

        body = bytes(range(256)) * 3
        expected = struct.pack(">I", len(body)) + body
        for request in (16, 64, 1024):
            tx, rx, view = self._ring_frame(capacity=4096, request=request)
            frame = InPlaceFrameWriter(view)
            frame.writer.write_bytes(body)
            in_place, spill = frame.finish()
            tx.commit(in_place)
            stream = bytearray(read_all(rx))
            if spill is not None:
                remainder = memoryview(bytes(spill))
                while len(remainder):
                    wrote = tx.try_write(remainder)
                    remainder = remainder[wrote:]
                    stream += read_all(rx)
            assert bytes(stream) == expected

    def test_abort_pools_spill_and_rolls_back_reservation(self):
        """Satellite audit: a failed in-place encode must return the
        pooled spill buffer and unpublish the reservation — no torn
        record, no leaked pool buffer."""
        from repro.transport.framing import InPlaceFrameWriter
        from repro.util.buffers import BufferPool

        pool = BufferPool()
        tx, rx, view = self._ring_frame(request=8)
        frame = InPlaceFrameWriter(view, pool)
        frame.writer.write_bytes(b"q" * 100)  # forces a pooled spill
        assert len(pool) == 0
        frame.abort()
        assert len(pool) == 1  # spill returned, not leaked
        tx.abort()
        assert not rx.readable()  # nothing published
        assert tx.try_write(b"next") == 4
        assert read_all(rx) == b"next"

    def test_reservation_too_small_for_header_rejected(self):
        from repro.transport.framing import InPlaceFrameWriter

        with pytest.raises(ValueError, match="header"):
            InPlaceFrameWriter(memoryview(bytearray(4)))


class _ZcProbeService(Remote):
    """Exercises values whose encode touches every writer primitive."""

    def echo(self, data: bytes) -> bytes:
        return data

    def combine(self, items, scale: float):
        return {
            "items": list(items),
            "scale": scale * 2,
            "text": "résultat ☃",
            "blob": b"\x00\x01" * 64,
        }


class TestZeroCopyEndToEnd:
    """shm endpoint calls: zero-copy on/off must be value-identical."""

    def _call_matrix(self, zero_copy: bool):
        from repro.nrmi.config import NRMIConfig
        from repro.nrmi.runtime import Endpoint
        from repro.transport.resolver import ChannelResolver

        resolver = ChannelResolver()
        config = NRMIConfig(
            transport="shm", tcp_pipelined=False, shm_zero_copy=zero_copy
        )
        server = Endpoint(
            name=f"zc-e2e-server-{zero_copy}", config=config, resolver=resolver
        )
        client = Endpoint(
            name=f"zc-e2e-client-{zero_copy}", config=config, resolver=resolver
        )
        try:
            address = server.serve_remote()
            server.bind("probe", _ZcProbeService())
            service = client.lookup(address, "probe")
            results = []
            for size in (0, 1, 64, 4096, 70_000):
                payload = bytes((i * 7) & 0xFF for i in range(size))
                results.append(service.echo(payload))
            results.append(service.combine([1, "two", 3.5, None], 1.25))
            return results
        finally:
            client.close()
            server.close()
            resolver.close_all()

    def test_zero_copy_results_match_staged_path(self):
        staged = self._call_matrix(zero_copy=False)
        zero_copy = self._call_matrix(zero_copy=True)
        assert staged == zero_copy
        # Sanity on the shared shape, not just cross-equality.
        assert zero_copy[-1]["scale"] == 2.5
        assert zero_copy[-2] == bytes((i * 7) & 0xFF for i in range(70_000))

    def test_zero_copy_calls_survive_many_iterations(self):
        """Borrow/consume discipline across sequential calls: no view
        leak, no ring desync, wraps included (payload > ring slack)."""
        from repro.nrmi.config import NRMIConfig
        from repro.nrmi.runtime import Endpoint
        from repro.transport.resolver import ChannelResolver

        resolver = ChannelResolver()
        config = NRMIConfig(transport="shm", tcp_pipelined=False)
        server = Endpoint(name="zc-iter-server", config=config, resolver=resolver)
        client = Endpoint(name="zc-iter-client", config=config, resolver=resolver)
        try:
            address = server.serve_remote()
            server.bind("probe", _ZcProbeService())
            service = client.lookup(address, "probe")
            for index in range(200):
                payload = bytes([index & 0xFF]) * (17 * index % 3000)
                assert service.echo(payload) == payload
        finally:
            client.close()
            server.close()
            resolver.close_all()
