"""Shared-memory transport: ring primitives, shm:// duplex, lifecycle.

The ring tests drive :mod:`repro.util.ring` directly over a plain
bytearray — wrap-around at every (aligned) offset, full-ring
backpressure, the doorbell waiting flags, and a two-thread byte-exact
stress run. The transport tests stand up real :class:`ShmServer`
instances: round trips plain and pipelined, frames larger than the ring,
park/wake when the client outlasts its spin budget, idle-CPU parking,
and the rendezvous-socket lifecycle (live-server refusal, stale-socket
reclaim, unlink-on-stop, and the inode guard that keeps a late-stopping
predecessor from unlinking its successor).
"""

import os
import random
import socket
import struct
import threading
import time

import pytest

from repro.errors import TransportError
from repro.transport.resolver import ChannelResolver
from repro.transport.shm import (
    PipelinedShmChannel,
    ShmChannel,
    ShmServer,
    handshake_path,
    shm_supported,
)
from repro.util.ring import (
    CTRL_BYTES,
    RECORD_HEADER,
    consumer_view,
    init_ring,
    producer_view,
    ring_region_size,
    yield_cpu,
)

pytestmark = pytest.mark.skipif(
    not shm_supported(), reason="platform lacks AF_UNIX fd passing"
)


def make_ring(capacity: int):
    buffer = bytearray(ring_region_size(capacity))
    init_ring(buffer, 0, capacity)
    return producer_view(buffer, 0, capacity), consumer_view(buffer, 0, capacity)


def read_all(rx, chunk: int = 4096) -> bytes:
    out = bytearray()
    buf = bytearray(chunk)
    while True:
        got = rx.try_read_into(buf)
        if not got:
            return bytes(out)
        out += buf[:got]


class TestRingPrimitives:
    def test_simple_roundtrip(self):
        tx, rx = make_ring(256)
        assert tx.try_write(b"hello ring") == 10
        assert rx.readable()
        assert read_all(rx) == b"hello ring"
        assert not rx.readable()

    def test_empty_ring_reads_nothing(self):
        _, rx = make_ring(256)
        assert not rx.readable()
        assert rx.pending_bytes() == 0
        assert rx.try_read_into(bytearray(16)) == 0

    def test_capacity_must_be_power_of_two(self):
        for bad in (0, 63, 100, 257):
            with pytest.raises(ValueError):
                make_ring(bad)

    def test_wraparound_at_every_aligned_offset(self):
        """March head/tail past the buffer edge at every 8-aligned
        position a record can start from; the stream must stay exact."""
        capacity = 256
        tx, rx = make_ring(capacity)
        rng = random.Random(7)
        written = bytearray()
        echoed = bytearray()
        # Odd-sized chunks so record padding shifts the start offset by
        # every multiple of the alignment over enough iterations.
        for step in range(400):
            chunk = bytes([step & 0xFF]) * rng.randrange(1, 61)
            assert tx.try_write(chunk) == len(chunk)
            written += chunk
            echoed += read_all(rx)
        assert echoed == written

    def test_full_ring_backpressure_and_drain(self):
        capacity = 256
        tx, rx = make_ring(capacity)
        blob = b"z" * 1024
        accepted = tx.try_write(blob)
        # The ring takes what fits (minus headers), never more.
        assert 0 < accepted < capacity
        assert tx.try_write(b"more") == 0
        assert not tx.writable()
        assert read_all(rx) == blob[:accepted]
        assert tx.writable()
        assert tx.try_write(b"more") == 4
        assert read_all(rx) == b"more"

    def test_large_stream_chunks_through_small_ring(self):
        tx, rx = make_ring(128)
        payload = bytes(range(256)) * 64  # 16 KiB through a 128 B ring
        out = bytearray()
        sent = 0
        view = memoryview(payload)
        while len(out) < len(payload):
            sent += tx.try_write(view[sent:])
            out += read_all(rx)
        assert bytes(out) == payload

    def test_pending_bytes_is_an_upper_bound(self):
        tx, rx = make_ring(256)
        assert rx.pending_bytes() == 0
        tx.try_write(b"abc")
        # 3 payload bytes, but the bound counts header + padding too.
        assert rx.pending_bytes() >= 3
        assert rx.pending_bytes() <= 3 + RECORD_HEADER + 8
        got = bytearray(1)
        rx.try_read_into(got)  # partially consume the record
        assert rx.pending_bytes() >= 2
        assert read_all(rx) == b"bc"
        assert rx.pending_bytes() == 0

    def test_waiting_flags_cross_sides(self):
        tx, rx = make_ring(256)
        assert not tx.peer_waiting and not rx.peer_waiting
        rx.set_waiting()
        assert tx.peer_waiting  # producer must ring the doorbell now
        rx.clear_waiting()
        assert not tx.peer_waiting
        tx.set_waiting()
        assert rx.peer_waiting  # consumer must ring back on free space
        tx.clear_waiting()
        assert not rx.peer_waiting

    def test_two_thread_byte_exact_stress(self):
        capacity = 4096
        tx, rx = make_ring(capacity)
        rng = random.Random(99)
        payload = bytes(rng.randrange(256) for _ in range(200_000))
        received = bytearray()
        failures = []
        abort = threading.Event()

        def producer():
            view = memoryview(payload)
            sent = 0
            try:
                while sent < len(view) and not abort.is_set():
                    wrote = tx.try_write(view[sent : sent + rng.randrange(1, 7000)])
                    if wrote:
                        sent += wrote
                    else:
                        yield_cpu()
            except Exception as exc:  # pragma: no cover - debug aid
                failures.append(exc)
                abort.set()

        def consumer():
            buf = bytearray(1500)
            try:
                while len(received) < len(payload) and not abort.is_set():
                    got = rx.try_read_into(buf)
                    if got:
                        received.extend(buf[:got])
                    else:
                        yield_cpu()
            except Exception as exc:  # pragma: no cover - debug aid
                failures.append(exc)
                abort.set()

        threads = [
            threading.Thread(target=producer),
            threading.Thread(target=consumer),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not failures
        assert not any(thread.is_alive() for thread in threads)
        assert bytes(received) == payload

    def test_corrupt_record_length_detected(self):
        """A record length no producer can write (torn cross-process read
        or trampled control block) must fail the read, not desync or
        spin the consumer."""
        capacity = 256
        buffer = bytearray(ring_region_size(capacity))
        init_ring(buffer, 0, capacity)
        tx = producer_view(buffer, 0, capacity)
        rx = consumer_view(buffer, 0, capacity)
        tx.try_write(b"hello")
        # Trample the record's length field (first u32 of the data area).
        for bogus in (0, capacity, 0x7FFFFFFF):
            struct.pack_into("<I", buffer, CTRL_BYTES, bogus)
            with pytest.raises(OSError, match="corrupt record length"):
                rx.try_read_into(bytearray(16))


def echo_handler(request: bytes) -> bytes:
    return b"echo:" + bytes(request)


class TestShmTransport:
    def test_roundtrip(self):
        with ShmServer(echo_handler) as server:
            channel = ShmChannel(server.name)
            try:
                assert channel.request(b"ping") == b"echo:ping"
                for index in range(50):
                    payload = f"msg-{index}".encode()
                    assert channel.request(payload) == b"echo:" + payload
            finally:
                channel.close()

    def test_frame_larger_than_ring_flows_under_backpressure(self):
        # 64 KiB rings, a 1 MiB frame: both directions must chunk the
        # stream into records and move it under flow control.
        with ShmServer(echo_handler, capacity=1 << 16) as server:
            channel = ShmChannel(server.name)
            try:
                payload = os.urandom(1 << 20)
                assert channel.request(payload) == b"echo:" + payload
            finally:
                channel.close()

    def test_pipelined_concurrent_callers(self):
        with ShmServer(echo_handler) as server:
            channel = PipelinedShmChannel(server.name)
            errors = []

            def worker(worker_id: int):
                try:
                    for index in range(25):
                        payload = f"w{worker_id}-{index}".encode()
                        reply = channel.request(payload)
                        assert reply == b"echo:" + payload
                except Exception as exc:  # pragma: no cover - debug aid
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(n,)) for n in range(4)
            ]
            try:
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=30.0)
                assert not errors
            finally:
                channel.close()

    def test_client_parks_on_doorbell_and_wakes(self):
        # The handler outlasts any realistic spin budget, so the client
        # must park on the doorbell fd and be woken by the reply's byte.
        def slow(request: bytes) -> bytes:
            time.sleep(0.08)
            return b"late:" + bytes(request)

        with ShmServer(slow) as server:
            channel = ShmChannel(server.name, spin=10)
            try:
                assert channel.request(b"x") == b"late:x"
            finally:
                channel.close()

    def test_reconnect_after_channel_close(self):
        with ShmServer(echo_handler) as server:
            first = ShmChannel(server.name)
            assert first.request(b"one") == b"echo:one"
            first.close()
            second = ShmChannel(server.name)
            try:
                assert second.request(b"two") == b"echo:two"
            finally:
                second.close()

    def test_idle_connection_burns_no_cpu(self):
        """After the linger window expires both sides must be parked in
        select — near-zero process CPU while the connection idles."""
        from repro.transport.netloop import StagedStreamServer

        with ShmServer(echo_handler) as server:
            channel = ShmChannel(server.name)
            try:
                assert channel.request(b"warm") == b"echo:warm"
                # Let the net thread's linger poll expire and re-park.
                time.sleep(10 * StagedStreamServer.DOORBELL_LINGER_SECONDS + 0.05)
                cpu_before = time.process_time()
                wall_before = time.monotonic()
                time.sleep(0.8)
                cpu_spent = time.process_time() - cpu_before
                wall = time.monotonic() - wall_before
                # Generous budget for suite noise; a busy-polling loop
                # would burn ~100% of the window, not a few percent.
                assert cpu_spent < 0.25 * wall, (
                    f"idle shm connection used {cpu_spent:.3f}s CPU "
                    f"over {wall:.3f}s wall"
                )
                # Still alive after re-parking.
                assert channel.request(b"again") == b"echo:again"
            finally:
                channel.close()

    def test_client_vanishing_mid_handshake_keeps_server_alive(self):
        """A client that connects and dies before reading the segment fd
        makes ``send_fds`` fail mid-handshake; that must reject only the
        one connection — not escape (e.g. as ``BufferError`` from
        closing a still-viewed mmap) and kill the net thread."""
        with ShmServer(echo_handler) as server:
            for _ in range(5):
                ghost = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                ghost.connect(server.path)
                ghost.close()  # gone before the handshake lands
            time.sleep(0.1)  # let the net thread chew through the ghosts
            channel = ShmChannel(server.name)
            try:
                assert channel.request(b"survivor") == b"echo:survivor"
            finally:
                channel.close()

    def test_recv_caps_at_bufsize(self):
        """The non-blocking ``recv`` obeys socket semantics: at most
        *bufsize* bytes per call, residue delivered by later calls."""
        from repro.transport.shm import _RingDuplex
        from repro.util.ring import ring_region_size as region

        capacity = 4096
        buffer = bytearray(2 * region(capacity))
        init_ring(buffer, 0, capacity)
        init_ring(buffer, region(capacity), capacity)
        left, right = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
        sender = _RingDuplex(
            buffer,
            left,
            consumer_view(buffer, region(capacity), capacity),
            producer_view(buffer, 0, capacity),
        )
        receiver = _RingDuplex(
            buffer,
            right,
            consumer_view(buffer, 0, capacity),
            producer_view(buffer, region(capacity), capacity),
        )
        try:
            payload = bytes(range(256)) * 8  # 2 KiB across several records
            sender.sendall(payload)
            got = bytearray()
            while len(got) < len(payload):
                chunk = receiver.recv(64)
                assert 0 < len(chunk) <= 64
                got += chunk
            assert bytes(got) == payload
            with pytest.raises(BlockingIOError):
                receiver.recv(64)
        finally:
            sender.close()
            receiver.close()

    def test_lost_doorbell_backstop_recovers(self, monkeypatch):
        """With every doorbell byte suppressed (the worst case of the
        cross-process store→load race) a round trip must still complete
        via the bounded-park re-checks, just slower."""
        from repro.transport.shm import _RingDuplex

        with ShmServer(echo_handler) as server:
            monkeypatch.setattr(_RingDuplex, "_ring_peer", lambda self: None)
            channel = ShmChannel(server.name, timeout=5.0, spin=10)
            try:
                assert channel.request(b"quiet") == b"echo:quiet"
            finally:
                channel.close()


class TestShmLifecycle:
    def test_live_server_refuses_rebind(self):
        with ShmServer(echo_handler) as server:
            with pytest.raises(TransportError, match="in use"):
                ShmServer(echo_handler, name=server.name)

    def test_stop_unlinks_rendezvous_socket(self):
        server = ShmServer(echo_handler)
        path = server.path
        assert os.path.exists(path)
        server.stop(grace=2.0)
        assert not os.path.exists(path)

    def test_stale_socket_is_reclaimed(self):
        name = "stale-reclaim-test"
        path = handshake_path(name)
        # A dead predecessor's leftover: a bound socket nobody listens on.
        leftover = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            leftover.bind(path)
        finally:
            leftover.close()
        assert os.path.exists(path)
        server = ShmServer(echo_handler, name=name)
        try:
            channel = ShmChannel(name)
            try:
                assert channel.request(b"hi") == b"echo:hi"
            finally:
                channel.close()
        finally:
            server.stop(grace=2.0)
        assert not os.path.exists(path)

    def test_successor_rebinds_after_stop(self):
        name = "successor-test"
        first = ShmServer(echo_handler, name=name)
        first.stop(grace=2.0)
        second = ShmServer(echo_handler, name=name)
        try:
            channel = ShmChannel(name)
            try:
                assert channel.request(b"hello") == b"echo:hello"
            finally:
                channel.close()
        finally:
            second.stop(grace=2.0)

    def test_late_stop_never_unlinks_successor(self):
        """Inode guard: a predecessor stopping *after* its path was
        reclaimed and rebound must leave the successor's socket alone."""
        name = "inode-guard-test"
        first = ShmServer(echo_handler, name=name)
        # Simulate the crashed-predecessor path going stale + reclaimed:
        # the successor rebinds the same path with a fresh inode.
        os.unlink(first.path)
        second = ShmServer(echo_handler, name=name)
        try:
            first.stop(grace=2.0)  # late stop; must not unlink
            assert os.path.exists(second.path)
            channel = ShmChannel(name)
            try:
                assert channel.request(b"still here") == b"echo:still here"
            finally:
                channel.close()
        finally:
            second.stop(grace=2.0)

    def test_bind_waits_for_endpoint_lock(self):
        """Reclaim-and-bind runs under the endpoint lock, so concurrent
        starters serialize instead of racing probe→unlink→bind (which
        could orphan the winner's listener)."""
        fcntl = pytest.importorskip("fcntl")
        name = "lock-serialize-test"
        path = handshake_path(name)
        lock_fd = os.open(path + ".lock", os.O_RDWR | os.O_CREAT, 0o600)
        fcntl.flock(lock_fd, fcntl.LOCK_EX)
        started = threading.Event()
        server_box = {}

        def start_server():
            server_box["server"] = ShmServer(echo_handler, name=name)
            started.set()

        thread = threading.Thread(target=start_server)
        thread.start()
        try:
            assert not started.wait(0.3), "bind did not wait for the lock"
            fcntl.flock(lock_fd, fcntl.LOCK_UN)
            assert started.wait(5.0), "bind never acquired the freed lock"
        finally:
            os.close(lock_fd)
            thread.join(timeout=5.0)
            server = server_box.get("server")
            if server is not None:
                server.stop(grace=2.0)

    def test_capacity_validation(self):
        with pytest.raises(TransportError, match="power of two"):
            ShmServer(echo_handler, capacity=5000)

    def test_resolver_opens_shm_scheme(self):
        with ShmServer(echo_handler) as server:
            resolver = ChannelResolver()
            try:
                channel = resolver.resolve(server.address)
                assert channel.request(b"via-resolver") == b"echo:via-resolver"
                # Cached: same channel object on re-resolve.
                assert resolver.resolve(server.address) is channel
            finally:
                resolver.close_all()

    def test_resolver_rejects_malformed_shm_address(self):
        resolver = ChannelResolver()
        with pytest.raises(TransportError, match="malformed shm"):
            resolver.resolve("shm://")
