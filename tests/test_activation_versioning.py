"""Activation (lazy services) and class-version migration."""

import threading

import pytest

from repro.core.markers import Remote, Serializable
from repro.rmi.activation import Activatable
from repro.serde.hooks import class_version
from repro.serde.reader import ObjectReader
from repro.serde.writer import ObjectWriter

from tests.model_helpers import Box


class CountingService(Remote):
    constructed = 0

    def __init__(self):
        type(self).constructed += 1
        self.calls = 0

    def ping(self):
        self.calls += 1
        return self.calls


class TestActivatable:
    def setup_method(self):
        CountingService.constructed = 0

    def test_not_constructed_until_first_call(self, endpoint_pair):
        slot = Activatable(CountingService)
        endpoint_pair.server.bind("svc", slot)
        stub = endpoint_pair.client.lookup(endpoint_pair.server.address, "svc")
        assert CountingService.constructed == 0
        assert not slot.is_active
        assert stub.ping() == 1
        assert CountingService.constructed == 1
        assert slot.is_active

    def test_instance_reused_across_calls(self, endpoint_pair):
        slot = Activatable(CountingService)
        stub = endpoint_pair.serve(slot)
        assert stub.ping() == 1
        assert stub.ping() == 2
        assert CountingService.constructed == 1

    def test_deactivate_drops_state(self, endpoint_pair):
        slot = Activatable(CountingService)
        stub = endpoint_pair.serve(slot)
        stub.ping()
        stub.ping()
        assert slot.deactivate()
        assert not slot.is_active
        assert stub.ping() == 1  # fresh instance: state gone
        assert CountingService.constructed == 2
        assert slot.activation_count == 2

    def test_deactivate_when_dormant(self):
        assert not Activatable(CountingService).deactivate()

    def test_factory_lambda(self, endpoint_pair):
        slot = Activatable(lambda: CountingService())
        stub = endpoint_pair.serve(slot)
        assert stub.ping() == 1

    def test_non_callable_factory_rejected(self):
        with pytest.raises(TypeError):
            Activatable("not-callable")

    def test_concurrent_first_calls_activate_once(self, endpoint_pair):
        slot = Activatable(CountingService)
        endpoint_pair.server.bind("svc", slot)
        results = []

        def worker():
            from repro.nrmi.runtime import Endpoint

            client = Endpoint(resolver=endpoint_pair.resolver)
            try:
                stub = client.lookup(endpoint_pair.server.address, "svc")
                results.append(stub.ping())
            finally:
                client.close()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert CountingService.constructed == 1
        assert sorted(results) == list(range(1, 9))

    def test_repr_states(self):
        slot = Activatable(CountingService)
        assert "dormant" in repr(slot)
        slot.ensure_active()
        assert "active" in repr(slot)


# --------------------------------------------------------------- versioning


class RecordV2(Serializable):
    """Current schema: full_name. Old peers send v0 with first/last."""

    __nrmi_version__ = 2

    def __init__(self, full_name=""):
        self.full_name = full_name

    def __nrmi_upgrade__(self, wire_version):
        if wire_version < 2 and not hasattr(self, "full_name"):
            first = getattr(self, "first", "")
            last = getattr(self, "last", "")
            self.full_name = f"{first} {last}".strip()
            for stale in ("first", "last"):
                if hasattr(self, stale):
                    delattr(self, stale)


def encode_as_old_version(instance_fields):
    """Simulate a v0 peer: same class name, old field layout, version 0."""
    writer = ObjectWriter()
    shim = RecordV2.__new__(RecordV2)
    for name, value in instance_fields.items():
        setattr(shim, name, value)
    # Fake the version stamp: temporarily claim version 0.
    original = RecordV2.__nrmi_version__
    RecordV2.__nrmi_version__ = 0
    try:
        writer.write_root(shim)
    finally:
        RecordV2.__nrmi_version__ = original
    return writer.getvalue()


class TestVersioning:
    def test_class_version_default_zero(self):
        assert class_version(Box) == 0
        assert class_version(RecordV2) == 2

    def test_same_version_roundtrip_no_upgrade(self):
        writer = ObjectWriter()
        writer.write_root(RecordV2("Ada Lovelace"))
        record = ObjectReader(writer.getvalue()).read_root()
        assert record.full_name == "Ada Lovelace"

    def test_old_stream_migrated(self):
        del_fields = {"first": "Alan", "last": "Turing"}
        payload = encode_as_old_version(del_fields)
        record = ObjectReader(payload).read_root()
        assert record.full_name == "Alan Turing"
        assert not hasattr(record, "first")
        assert not hasattr(record, "last")

    def test_upgrade_runs_once_per_instance(self):
        payload = encode_as_old_version({"first": "A", "last": "B"})
        record = ObjectReader(payload).read_root()
        assert record.full_name == "A B"

    def test_version_travels_once_per_class_in_modern_profile(self):
        writer = ObjectWriter()
        writer.write_root([RecordV2("x"), RecordV2("y")])
        from repro.serde.dump import dump_stream

        out = dump_stream(writer.getvalue())
        assert out.count("@v2") == 2  # dump shows the label per object...
        # ...but the descriptor itself was interned (one definition):
        assert writer.getvalue().count(b"RecordV2") == 1

    def test_unversioned_classes_unaffected(self):
        writer = ObjectWriter()
        writer.write_root(Box("plain"))
        assert ObjectReader(writer.getvalue()).read_root().payload == "plain"
