"""Tier-1 gate: the repo's own sources must lint clean.

Runs ``nrmi-lint`` over ``src/`` and ``examples/`` and fails on ANY
finding — errors *and* warnings. New middleware code that trips a rule
must either be fixed or carry an inline ``# nrmi: disable=CODE --
reason`` suppression; naked suppressions are findings themselves, so
every exception stays justified.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import time

import pytest

from repro.analysis import analyze_paths

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_repo_sources_lint_clean():
    # The gate runs with --jobs semantics (0 = one worker per CPU) so the
    # growing rule set doesn't slow the suite; output is merge-identical
    # to a serial run by construction.
    result = analyze_paths([str(ROOT / "src"), str(ROOT / "examples")], jobs=0)
    rendered = "\n".join(f.render() for f in result.findings)
    assert not result.findings, f"nrmi-lint findings in repo sources:\n{rendered}"
    assert result.files > 80  # the walk really covered the tree


def test_concurrency_rules_engage_on_repo():
    """NRMI04x must actually run over the staged core and shm ring: the
    suppression in netloop.py proves NRMI041 engaged, and the ring rule
    must pass over the real producer/consumer split WITHOUT suppressions.
    """
    result = analyze_paths(
        [str(ROOT / "src"), str(ROOT / "examples")],
        select=["NRMI041", "NRMI042", "NRMI043", "NRMI044", "NRMI045", "NRMI046"],
    )
    assert result.findings == []
    suppressed = {(f.code, pathlib.Path(f.path).name) for f in result.suppressed}
    assert ("NRMI041", "netloop.py") in suppressed
    assert not any(code == "NRMI043" for code, _ in suppressed)


@pytest.mark.bench_smoke
def test_full_repo_lint_wall_time():
    """Full-repo lint stays under 10s with --jobs — the satellite gate
    that keeps the rule catalogue from slowing tier-1."""
    start = time.perf_counter()
    result = analyze_paths(
        [str(ROOT / "src"), str(ROOT / "tests"), str(ROOT / "examples")],
        jobs=0,
    )
    elapsed = time.perf_counter() - start
    assert result.files > 100
    assert elapsed < 10.0, f"full-repo lint took {elapsed:.2f}s"


def test_protocol_invariants_actually_ran():
    """The cross-file rule must engage on the real protocol sources —
    a silent skip (e.g. after a file move) would hollow out the gate."""
    result = analyze_paths(
        [str(ROOT / "src" / "repro" / "rmi" / "protocol.py")]
    )
    assert result.findings == []
    # Counterparts are loaded from disk even when only protocol.py is
    # scanned; corrupting the magic must therefore surface here, which
    # proves the invariant checks ran (exercised via the fixture tree in
    # test_analysis.py::TestFixtureFindings::test_wire_drift_tree).


def test_cli_gate_over_repo(tmp_path):
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.analysis",
            "--json",
            str(ROOT / "src"),
            str(ROOT / "examples"),
        ],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["summary"]["findings"] == 0
    assert payload["summary"]["exit_code"] == 0
