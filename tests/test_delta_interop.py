"""Delta/full interop: the capability negotiation across transports.

A delta-requesting client that advertises ``CAP_DELTA_SLOTS`` gets the
dirty-slot reply frame from a capable server; either side lacking the
capability transparently falls back to a classic reply (full map from a
"full-only" server, legacy object delta to a non-advertising client).
Every combination, over every transport, must restore the client heap
byte-identically to running the same mutation locally.
"""

import pytest

from repro.core.markers import Remote
from repro.nrmi.config import NRMIConfig
from repro.nrmi.runtime import Endpoint
from repro.transport.resolver import ChannelResolver
from repro.transport.simnet import NetworkModel, SimulatedChannel

from tests.model_helpers import Box, Node, heap_fingerprint

TRANSPORTS = ("inproc", "simnet", "tcp", "uds", "shm")


class ScrambleService(Remote):
    """A sparse mutation: touches one node, allocates one, keeps the rest."""

    def scramble(self, box):
        first = box.payload[0]
        first.data = ("touched", first.data)
        fresh = Node("fresh")
        fresh.next = first
        box.payload.append(fresh)
        return fresh


def make_heap(width=8):
    nodes = [Node(i) for i in range(width)]
    for left, right in zip(nodes, nodes[1:]):
        left.next = right
    box = Box(list(nodes))
    box.alias = nodes[3]  # alias into the middle: restore must preserve it
    return box


def local_fingerprint():
    box = make_heap()
    result = ScrambleService().scramble(box)
    return heap_fingerprint([box, result])


class InteropWorld:
    """One client/server pair over the requested transport."""

    def __init__(self, transport, server_config=None, client_config=None):
        self.resolver = ChannelResolver()
        self.server = Endpoint(
            name="interop-server", config=server_config, resolver=self.resolver
        )
        self.client = Endpoint(
            name="interop-client", config=client_config, resolver=self.resolver
        )
        self.server.bind("svc", ScrambleService())
        address = self.server.address
        if transport == "tcp":
            address = self.server.serve_tcp()
        elif transport == "uds":
            address = self.server.serve_uds()
        elif transport == "shm":
            address = self.server.serve_shm()
        elif transport == "simnet":
            self.resolver.set_wrapper(
                address,
                lambda inner: SimulatedChannel(inner, NetworkModel()),
            )
        self.service = self.client.lookup(address, "svc")

    def scramble_fingerprint(self):
        box = make_heap()
        result = self.service.scramble(box)
        return heap_fingerprint([box, result])

    def close(self):
        self.client.close()
        self.server.close()
        self.resolver.close_all()


@pytest.fixture(params=TRANSPORTS)
def transport(request):
    return request.param


def test_both_capable_speak_dirty_slot_frames(transport):
    world = InteropWorld(transport, client_config=NRMIConfig(policy="delta"))
    try:
        assert world.scramble_fingerprint() == local_fingerprint()
        # The reply really was the dirty-slot frame, on both ends.
        assert world.client.metrics.counter("delta.slot_replies").value == 1
        assert world.server.metrics.counter("delta.slots_clean").value > 0
        assert world.server.metrics.counter("delta.slots_dirty").value > 0
    finally:
        world.close()


def test_delta_client_against_full_only_server(transport):
    world = InteropWorld(
        transport,
        server_config=NRMIConfig(delta_replies=False),
        client_config=NRMIConfig(policy="delta"),
    )
    try:
        assert world.scramble_fingerprint() == local_fingerprint()
        # The server downgraded to a full-map reply; no delta frames flowed.
        assert world.client.metrics.counter("delta.slot_replies").value == 0
        assert world.server.metrics.counter("delta.slots_dirty").value == 0
    finally:
        world.close()


def test_non_advertising_client_against_delta_server(transport):
    world = InteropWorld(
        transport,
        client_config=NRMIConfig(policy="delta", delta_reply_frames=False),
    )
    try:
        assert world.scramble_fingerprint() == local_fingerprint()
        # Without the capability bit the server answers with the legacy
        # object-delta reply, never the dirty-slot frame.
        assert world.client.metrics.counter("delta.slot_replies").value == 0
        assert world.server.metrics.counter("delta.slots_dirty").value == 0
    finally:
        world.close()


def test_full_policy_client_unaffected_by_capability(transport):
    world = InteropWorld(transport, client_config=NRMIConfig(policy="full"))
    try:
        assert world.scramble_fingerprint() == local_fingerprint()
        assert world.client.metrics.counter("delta.slot_replies").value == 0
    finally:
        world.close()


def test_dirty_slot_reply_is_smaller_than_full_map():
    """Same mutation, same transport: the negotiated delta reply moves
    fewer bytes than the full-map reply it replaces."""
    sizes = {}
    for policy in ("full", "delta"):
        world = InteropWorld("inproc", client_config=NRMIConfig(policy=policy))
        try:
            channel = world.resolver.resolve(world.server.address)
            channel.stats.reset()
            world.scramble_fingerprint()
            sizes[policy] = channel.stats.snapshot()["bytes_received"]
        finally:
            world.close()
    assert sizes["delta"] < sizes["full"]
