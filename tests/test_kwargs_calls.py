"""Keyword arguments across the wire, with full semantics resolution."""

import pytest

from repro.core.markers import Remote
from repro.core.semantics import PassingMode
from repro.rmi.protocol import (
    CallRequest,
    decode_call,
    encode_call,
    read_call_header,
)
from repro.util.buffers import BufferReader

from tests.model_helpers import Box, Node


class KwService(Remote):
    def greet(self, name, *, punctuation="!", repeat=1):
        return f"hello {name}{punctuation}" * repeat

    def fill(self, box, value=0, tag=None):
        box.payload = value
        if tag is not None:
            box.tag = tag
        return value

    def collect(self, *args, **kwargs):
        return [list(args), dict(sorted(kwargs.items()))]


class TestKwargProtocol:
    def test_codec_roundtrip(self):
        request = CallRequest(
            object_id=1,
            method="m",
            policy="full",
            profile="modern",
            modes=(PassingMode.BY_VALUE, PassingMode.BY_COPY),
            args_payload=b"P",
            kwarg_names=("tag",),
            call_id=42,
        )
        reader = BufferReader(encode_call(request))
        reader.read_u8()
        call_id, attempt = read_call_header(reader)
        assert decode_call(reader, call_id=call_id, attempt=attempt) == request

    def test_no_kwargs_is_default(self):
        request = CallRequest(1, "m", "none", "modern", (), b"")
        reader = BufferReader(encode_call(request))
        reader.read_u8()
        read_call_header(reader)
        assert decode_call(reader).kwarg_names == ()


class TestKwargCalls:
    def test_keyword_only_parameters(self, endpoint_pair):
        service = endpoint_pair.serve(KwService())
        assert service.greet("ada", punctuation="?") == "hello ada?"
        assert service.greet("bob", repeat=2) == "hello bob!hello bob!"

    def test_positional_and_keyword_mix(self, endpoint_pair):
        service = endpoint_pair.serve(KwService())
        assert service.collect(1, 2, z=3, a=4) == [[1, 2], {"a": 4, "z": 3}]

    def test_restorable_as_keyword_value(self, endpoint_pair):
        """Copy-restore applies to keyword arguments too."""

        class KwRestore(Remote):
            def mutate(self, *, box):
                box.payload = "set-via-kw"

        service = endpoint_pair.serve(KwRestore(), name="kwr")
        box = Box("before")
        service.mutate(box=box)
        assert box.payload == "set-via-kw"

    def test_default_values_respected(self, endpoint_pair):
        service = endpoint_pair.serve(KwService())
        box = Box(None)
        assert service.fill(box) == 0
        assert box.payload == 0
        assert not hasattr(box, "tag")

    def test_kwarg_with_restorable_positional(self, endpoint_pair):
        service = endpoint_pair.serve(KwService())
        box = Box(None)
        service.fill(box, value=7, tag="labelled")
        assert box.payload == 7
        assert box.tag == "labelled"

    def test_unexpected_keyword_raises_remotely(self, endpoint_pair):
        from repro.errors import RemoteInvocationError

        service = endpoint_pair.serve(KwService())
        with pytest.raises(RemoteInvocationError):
            service.greet("x", nope=1)

    def test_shared_structure_between_positional_and_keyword(self, endpoint_pair):
        class Sharing(Remote):
            def check(self, a, *, b):
                return a.payload is b.payload

        service = endpoint_pair.serve(Sharing(), name="sharing")
        shared = Node("s")
        assert service.check(Box(shared), b=Box(shared)) is True
