"""Kind classification unit tests and a middleware soak test."""

import pytest

from repro.serde.kinds import (
    Kind,
    classify,
    is_immutable_container,
    is_mutable_kind,
)

from tests.model_helpers import Box, Node, SlottedPoint


class TestClassify:
    @pytest.mark.parametrize(
        "value", [None, True, 1, 1.5, complex(1, 2), "s", b"b"]
    )
    def test_primitives(self, value):
        assert classify(value) is Kind.PRIMITIVE

    def test_containers(self):
        assert classify([]) is Kind.LIST
        assert classify(()) is Kind.TUPLE
        assert classify(set()) is Kind.SET
        assert classify(frozenset()) is Kind.FROZENSET
        assert classify({}) is Kind.DICT
        assert classify(bytearray()) is Kind.BYTEARRAY

    def test_instances(self):
        assert classify(Box(1)) is Kind.OBJECT
        assert classify(SlottedPoint(1, 2)) is Kind.OBJECT

    def test_code_like_unsupported(self):
        assert classify(classify) is Kind.UNSUPPORTED      # function
        assert classify(Kind) is Kind.UNSUPPORTED          # class
        assert classify((x for x in [])) is Kind.UNSUPPORTED  # generator
        import os

        assert classify(os) is Kind.UNSUPPORTED            # module
        assert classify("".join) is Kind.UNSUPPORTED       # bound builtin

    def test_bare_object_unsupported(self):
        assert classify(object()) is Kind.UNSUPPORTED

    def test_bool_subclass_is_primitive(self):
        class MyInt(int):
            pass

        assert classify(MyInt(1)) is Kind.PRIMITIVE

    def test_mutable_kind_table(self):
        assert is_mutable_kind(Kind.LIST)
        assert is_mutable_kind(Kind.DICT)
        assert is_mutable_kind(Kind.SET)
        assert is_mutable_kind(Kind.BYTEARRAY)
        assert is_mutable_kind(Kind.OBJECT)
        assert not is_mutable_kind(Kind.TUPLE)
        assert not is_mutable_kind(Kind.FROZENSET)
        assert not is_mutable_kind(Kind.PRIMITIVE)

    def test_immutable_container_table(self):
        assert is_immutable_container(Kind.TUPLE)
        assert is_immutable_container(Kind.FROZENSET)
        assert not is_immutable_container(Kind.LIST)


class TestSoak:
    """Hundreds of mixed calls: nothing may accumulate or corrupt."""

    def test_sustained_mixed_traffic(self, endpoint_pair):
        from repro.core.markers import Remote

        class Mixed(Remote):
            def flip(self, box):
                box.payload = -box.payload
                return box.payload

            def read(self, box):
                return box.payload

            def fail_sometimes(self, n):
                if n % 7 == 0:
                    raise ValueError(f"planned {n}")
                return n

        service = endpoint_pair.serve(Mixed())
        from repro.errors import RemoteInvocationError

        failures = 0
        for n in range(300):
            box = Box(n)
            assert service.flip(box) == -n
            assert box.payload == -n
            try:
                service.fail_sometimes(n)
            except RemoteInvocationError:
                failures += 1
        assert failures == 300 // 7 + 1

        # Nothing restorable-related leaked into the export tables: only
        # the registry and the service itself are exported.
        assert endpoint_pair.server.exports.live_count() == 2
        assert endpoint_pair.client.exports.live_count() == 1  # registry

    def test_sustained_batches(self, endpoint_pair):
        from repro.core.markers import Remote

        class Adder(Remote):
            def add(self, a, b):
                return a + b

        service = endpoint_pair.serve(Adder())
        for _round in range(20):
            with endpoint_pair.client.batch() as batch:
                handles = [batch.call(service, "add", i, 1) for i in range(20)]
            assert [handle.result() for handle in handles] == list(range(1, 21))

    def test_alternating_policies_one_endpoint_pair(self, make_endpoint_pair):
        """A 'full' client and a 'delta' client share one server."""
        from repro.core.markers import Remote
        from repro.nrmi.config import NRMIConfig
        from repro.nrmi.runtime import Endpoint

        class Bump(Remote):
            def bump(self, box):
                box.payload += 1

        pair = make_endpoint_pair()
        pair.server.bind("bump", Bump())
        delta_client = Endpoint(
            config=NRMIConfig(policy="delta"), resolver=pair.resolver
        )
        try:
            full_stub = pair.client.lookup(pair.server.address, "bump")
            delta_stub = delta_client.lookup(pair.server.address, "bump")
            box_full, box_delta = Box(0), Box(100)
            for _ in range(25):
                full_stub.bump(box_full)
                delta_stub.bump(box_delta)
            assert box_full.payload == 25
            assert box_delta.payload == 125
        finally:
            delta_client.close()
