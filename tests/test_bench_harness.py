"""Benchmark drivers: records, network accounting, the Table 6 failure."""

import pytest

from repro.bench.harness import (
    BenchRecord,
    CPU_SLOW_SCALE,
    PAPER_NETWORK,
    run_local,
    run_manual_restore,
    run_nrmi,
    run_oneway,
    run_remote_ref,
)
from repro.bench.mutators import TreeService, mutator_for
from repro.bench.trees import generate_workload
from repro.nrmi.config import NRMIConfig


class TestBenchRecord:
    def test_total_is_compute_plus_network(self):
        record = BenchRecord("5", "I", 16, "x", ms_compute=2.0, ms_network=3.0)
        assert record.ms_total == 5.0

    def test_cell_formats(self):
        fast = BenchRecord("1", "I", 16, "x", ms_compute=0.2)
        assert fast.cell() == "<1"
        slow = BenchRecord("1", "I", 16, "x", ms_compute=12.4)
        assert slow.cell() == "12"
        failed = BenchRecord("6", "I", 1024, "x", failed="leak")
        assert failed.cell() == "-"


class TestDrivers:
    def test_local_measures_compute_only(self):
        record = run_local("I", 32, reps=2)
        assert record.ms_network == 0.0
        assert record.ms_compute >= 0.0
        assert record.reps == 2

    def test_slow_machine_scaled(self):
        fast = run_local("II", 64, reps=3, machine="fast", seed=5)
        slow = run_local("II", 64, reps=3, machine="slow", seed=5)
        # Same measured samples, deterministically scaled.
        assert slow.ms_compute == pytest.approx(
            fast.ms_compute * CPU_SLOW_SCALE, rel=0.8
        )

    def test_oneway_ships_request_only(self):
        record = run_oneway("I", 32, reps=2)
        assert record.bytes_sent > record.bytes_received
        assert record.round_trips >= 2

    def test_manual_restore_ships_both_ways(self):
        record = run_manual_restore("III", 32, reps=2)
        assert record.bytes_received > 200  # tree + shadow coming back

    def test_manual_restore_local_machine_has_no_network(self):
        record = run_manual_restore("III", 32, reps=2, network=None)
        assert record.ms_network == 0.0
        assert record.table == "3"

    def test_nrmi_record(self):
        record = run_nrmi("III", 32, reps=2)
        assert record.table == "5"
        assert record.config == "nrmi-full/modern/optimized"
        assert record.ms_network > 0
        assert record.bytes_received > 0

    def test_nrmi_policies_accepted(self):
        for policy in ("full", "delta", "dce"):
            record = run_nrmi("II", 16, reps=1, policy=policy)
            assert record.reps == 1

    def test_network_cost_scales_with_size(self):
        small = run_nrmi("I", 16, reps=2, seed=3)
        large = run_nrmi("I", 256, reps=2, seed=3)
        # Per-message latency dominates tiny trees; bytes grow ~linearly.
        assert large.ms_network > small.ms_network
        assert large.bytes_sent > small.bytes_sent * 8


class TestShapes:
    """The qualitative claims of Section 5.3.3, at reduced scale."""

    def test_nrmi_ships_more_than_oneway(self):
        oneway = run_oneway("II", 64, reps=2)
        nrmi = run_nrmi("II", 64, reps=2)
        assert nrmi.bytes_received > oneway.bytes_received

    def test_manual_scenario_iii_ships_more_than_nrmi(self):
        """The shadow tree costs more bytes than the restore payload."""
        manual = run_manual_restore("III", 128, reps=2)
        nrmi = run_nrmi("III", 128, reps=2)
        assert manual.bytes_received > nrmi.bytes_received

    def test_legacy_profile_slower_than_modern(self):
        legacy = run_oneway("II", 256, profile="legacy", reps=3)
        modern = run_oneway("II", 256, profile="modern", reps=3)
        assert modern.ms_compute < legacy.ms_compute

    def test_remote_ref_order_of_magnitude_worse(self):
        nrmi = run_nrmi("II", 64, reps=2)
        remote_ref = run_remote_ref("II", 64, reps=2)
        assert remote_ref.ms_total > nrmi.ms_total * 5
        assert remote_ref.round_trips > nrmi.round_trips * 10


class TestTable6Failure:
    def test_1024_nodes_fail_by_leak(self):
        record = run_remote_ref("III", 1024, reps=3)
        assert record.failed is not None
        assert "leak" in record.failed
        assert record.cell() == "-"

    def test_small_sizes_complete(self):
        record = run_remote_ref("II", 16, reps=2)
        assert record.failed is None
        assert record.ms_total > 0


class TestNrmiOracle:
    """Every benchmark configuration must uphold the semantics invariant."""

    @pytest.mark.parametrize("scenario", ["I", "II", "III"])
    def test_nrmi_call_matches_local(self, make_endpoint_pair, scenario):
        pair = make_endpoint_pair()
        service = pair.serve(TreeService(), name="trees")
        seed = 31
        remote_workload = generate_workload(scenario, 64, seed)
        service.mutate(scenario, remote_workload.root, seed)

        local_workload = generate_workload(scenario, 64, seed)
        mutator_for(scenario)(local_workload.root, seed)
        assert remote_workload.visible_data() == local_workload.visible_data()

    @pytest.mark.parametrize("scenario", ["I", "II", "III"])
    def test_remote_pointer_call_matches_local(self, make_endpoint_pair, scenario):
        config = NRMIConfig(policy="none")
        pair = make_endpoint_pair(server_config=config, client_config=config)
        service = pair.serve(TreeService(), name="trees")
        seed = 37
        remote_workload = generate_workload(scenario, 32, seed)
        pointer = pair.client.pointer_to(remote_workload.root)
        service.mutate(scenario, pointer, seed)

        local_workload = generate_workload(scenario, 32, seed)
        mutator_for(scenario)(local_workload.root, seed)
        # Remote pointers mutate the client's own nodes; spliced-in nodes
        # are remote — compare only data visible through plain traversal.
        assert _pointer_view(remote_workload.root) == _pointer_view(
            local_workload.root
        )


def _pointer_view(root):
    """Preorder data view that tolerates RemotePointer children."""
    out = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node is None:
            out.append(None)
            continue
        out.append(node.data)
        stack.append(node.right)
        stack.append(node.left)
    return out
