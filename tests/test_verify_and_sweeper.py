"""The heap-equivalence library feature, harness verify mode, sweeper."""

import time

import pytest

from repro.bench.harness import (
    BenchmarkInvariantError,
    run_manual_restore,
    run_nrmi,
)
from repro.core.verify import explain_difference, fingerprint, heaps_equivalent
from repro.nrmi.config import NRMIConfig
from repro.nrmi.runtime import Endpoint
from repro.serde.writer import ObjectWriter
from repro.transport.resolver import ChannelResolver
from repro.util.clock import ManualClock

from tests.model_helpers import Box, Node


class TestFingerprint:
    def test_identical_structures_equal(self):
        def build():
            shared = Node("s")
            return Box([shared, shared, Node("t")])

        assert heaps_equivalent([build()], [build()])

    def test_aliasing_difference_detected(self):
        shared = Node("s")
        aliased = Box([shared, shared])
        unaliased = Box([Node("s"), Node("s")])
        assert not heaps_equivalent([aliased], [unaliased])

    def test_value_difference_detected(self):
        assert not heaps_equivalent([Box(1)], [Box(2)])

    def test_root_correspondence_matters(self):
        a, b = Node(1), Node(2)
        assert heaps_equivalent([a, b], [Node(1), Node(2)])
        assert not heaps_equivalent([a, b], [Node(2), Node(1)])

    def test_cycles_fingerprint_terminates(self):
        node = Node("self")
        node.next = node
        assert heaps_equivalent([node], [node])

    def test_opaque_objects_shallow(self):
        class Opaque:
            pass

        left, right = Opaque(), Opaque()
        left.hidden = 1
        right.hidden = 2
        is_opaque = lambda obj: isinstance(obj, Opaque)  # noqa: E731
        assert heaps_equivalent(
            [Box(left)], [Box(right)], opaque=is_opaque
        )

    def test_explain_difference_equal(self):
        assert explain_difference([Box(1)], [Box(1)]) == "heaps are equivalent"

    def test_explain_difference_pinpoints(self):
        message = explain_difference([Box(1)], [Box(2)])
        assert "object #" in message

    def test_bytearray_and_containers(self):
        value = {"b": bytearray(b"x"), "t": (1, 2), "s": {3}}
        twin = {"b": bytearray(b"x"), "t": (1, 2), "s": {3}}
        assert heaps_equivalent([value], [twin])


class TestHarnessVerifyMode:
    def test_nrmi_verifies_clean(self):
        record = run_nrmi("III", 32, reps=1, verify=True)
        assert record.failed is None

    def test_manual_restore_verifies_clean(self):
        record = run_manual_restore("III", 32, reps=1, verify=True)
        assert record.failed is None

    def test_invariant_violation_detected(self):
        """Policy 'none' drops mutations: verify mode must catch it."""
        with pytest.raises(BenchmarkInvariantError):
            run_nrmi("III", 32, reps=1, policy="none", verify=True)


class TestLeaseSweeper:
    def test_sweeper_collects_expired(self):
        clock = ManualClock()
        endpoint = Endpoint(
            config=NRMIConfig(policy="none", lease_seconds=0.01),
            resolver=ChannelResolver(),
        )
        try:
            # Swap in the manual clock for determinism.
            endpoint.exports.dgc.clock = clock
            endpoint.exports.export_marshalled(Node(1))
            assert endpoint.exports.dgc.live_referenced_count() == 1
            clock.advance(1)
            endpoint.start_lease_sweeper(interval_seconds=0.01)
            deadline = time.time() + 5
            while endpoint.exports.dgc.live_referenced_count() and time.time() < deadline:
                time.sleep(0.01)
            assert endpoint.exports.dgc.live_referenced_count() == 0
        finally:
            endpoint.close()

    def test_start_idempotent(self):
        endpoint = Endpoint(resolver=ChannelResolver())
        try:
            endpoint.start_lease_sweeper(interval_seconds=10)
            thread = endpoint._sweeper_thread
            endpoint.start_lease_sweeper(interval_seconds=10)
            assert endpoint._sweeper_thread is thread
        finally:
            endpoint.close()

    def test_close_stops_sweeper(self):
        endpoint = Endpoint(resolver=ChannelResolver())
        endpoint.start_lease_sweeper(interval_seconds=0.01)
        thread = endpoint._sweeper_thread
        endpoint.close()
        thread.join(timeout=5)
        assert not thread.is_alive()


class TestWriterStats:
    def test_stats_disabled_by_default(self):
        writer = ObjectWriter()
        writer.write_root([1, 2])
        assert writer.stats is None

    def test_stats_counts_types(self):
        writer = ObjectWriter(collect_stats=True)
        writer.write_root([1, "a", Node(2), [3]])
        assert writer.stats["int"] == 3  # 1, 3, and Node(2).data
        assert writer.stats["str"] == 1
        assert writer.stats["Node"] == 1
        assert writer.stats["list"] == 2
