"""Method-level policy annotations and asynchronous invocation."""

import threading
import time

import pytest

from repro.core.markers import Remote
from repro.errors import RemoteInvocationError
from repro.nrmi.annotations import (
    effective_policy,
    method_policy_override,
    no_restore,
    restore_policy,
)
from repro.nrmi.runtime import async_call

from tests.model_helpers import Box, Node


class AnnotatedService(Remote):
    @no_restore
    def read_only_sum(self, box):
        box.payload.append("server-noise")  # mutation must NOT come back
        return len(box.payload)

    @restore_policy("delta")
    def sparse_touch(self, box):
        box.payload[0] = "touched"

    @restore_policy("dce")
    def dce_style(self, box):
        detached = box.payload
        box.payload = None
        detached.data = "lost"

    def plain(self, box):
        box.payload = "restored"


class SlowService(Remote):
    def slow_double(self, box, delay):
        time.sleep(delay)
        box.payload *= 2
        return box.payload

    def fail(self):
        raise RuntimeError("async boom")

    def thread_name(self):
        return threading.current_thread().name


class TestAnnotationHelpers:
    def test_override_recorded(self):
        assert method_policy_override(AnnotatedService.read_only_sum) == "none"
        assert method_policy_override(AnnotatedService.sparse_touch) == "delta"
        assert method_policy_override(AnnotatedService.plain) is None

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            restore_policy("bogus")

    def test_effective_policy_combinations(self):
        assert effective_policy("full", AnnotatedService.plain) == "full"
        assert effective_policy("full", AnnotatedService.read_only_sum) == "none"
        assert effective_policy("full", AnnotatedService.sparse_touch) == "delta"
        # Never upgrade a call-by-copy request:
        assert effective_policy("none", AnnotatedService.sparse_touch) == "none"


class TestAnnotatedCalls:
    def test_no_restore_skips_restoration(self, endpoint_pair):
        service = endpoint_pair.serve(AnnotatedService())
        box = Box(["caller-data"])
        count = service.read_only_sum(box)
        assert count == 2                      # server saw its copy grow
        assert box.payload == ["caller-data"]  # caller untouched

    def test_no_restore_ships_less(self, endpoint_pair):
        service = endpoint_pair.serve(AnnotatedService())
        channel = endpoint_pair.client.channel_to(endpoint_pair.server.address)

        big = Box([Node(i) for i in range(100)])
        before = channel.stats.snapshot()["bytes_received"]
        service.read_only_sum(big)
        read_only_bytes = channel.stats.snapshot()["bytes_received"] - before

        big2 = Box([Node(i) for i in range(100)])
        before = channel.stats.snapshot()["bytes_received"]
        service.plain(big2)
        full_bytes = channel.stats.snapshot()["bytes_received"] - before
        assert read_only_bytes < full_bytes / 5

    def test_delta_override_still_restores(self, endpoint_pair):
        service = endpoint_pair.serve(AnnotatedService())
        box = Box(["original", "rest"])
        service.sparse_touch(box)
        assert box.payload[0] == "touched"

    def test_dce_override_loses_detached(self, endpoint_pair):
        service = endpoint_pair.serve(AnnotatedService())
        node = Node("kept")
        box = Box(node)
        service.dce_style(box)
        assert box.payload is None
        assert node.data == "kept"  # DCE semantics: detached update lost

    def test_unannotated_method_unaffected(self, endpoint_pair):
        service = endpoint_pair.serve(AnnotatedService())
        box = Box("x")
        service.plain(box)
        assert box.payload == "restored"


class TestAsyncInvocation:
    def test_future_resolves_with_result(self, endpoint_pair):
        service = endpoint_pair.serve(SlowService())
        box = Box(21)
        future = async_call(service, "slow_double", box, 0.01)
        assert future.result(timeout=10) == 42
        assert box.payload == 42  # restore ran before resolution

    def test_concurrent_futures(self, endpoint_pair):
        service = endpoint_pair.serve(SlowService())
        boxes = [Box(i) for i in range(6)]
        futures = [
            async_call(service, "slow_double", box, 0.02) for box in boxes
        ]
        results = [future.result(timeout=10) for future in futures]
        assert results == [i * 2 for i in range(6)]
        assert [box.payload for box in boxes] == results

    def test_async_exception_propagates(self, endpoint_pair):
        service = endpoint_pair.serve(SlowService())
        future = async_call(service, "fail")
        with pytest.raises(RemoteInvocationError):
            future.result(timeout=10)

    def test_runs_off_calling_thread(self, endpoint_pair):
        service = endpoint_pair.serve(SlowService())
        future = endpoint_pair.client.invoke_async(
            service.descriptor, "thread_name", ()
        )
        future.result(timeout=10)  # completes; dispatch happened on a worker

    def test_async_call_rejects_non_stub(self):
        with pytest.raises(Exception):
            async_call("not-a-stub", "method")
