"""Chaos matrix: faults injected at every pipeline stage, plus the
at-most-once and deadline acceptance scenarios.

Each scenario checks the two robustness invariants:

* **failure atomicity** — a call that fails at any stage (marshal, send,
  execute, reply, restore) leaves the caller's heap bit-identical to the
  pre-call snapshot (restore is reply-driven, so there is nothing to
  roll back);
* **at-most-once** — with retry enabled, a call whose first attempt
  executed but lost its reply is answered from the server's reply cache
  on retransmission instead of re-running the method.
"""

import socket as socket_mod
import threading
import time

import pytest

from repro.core.markers import Remote
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    RemoteInvocationError,
    SerializationError,
    ServerBusyError,
    TransportError,
    UnmarshalError,
)
from repro.nrmi.config import NRMIConfig
from repro.transport.fault import FaultInjectingChannel
from repro.transport.reliability import CircuitBreakerPolicy, RetryPolicy

from tests.model_helpers import Box, Node, heap_fingerprint

pytestmark = pytest.mark.chaos


FAST_RETRY = RetryPolicy(max_attempts=4, base_delay=0.001, jitter=0.0)


class LedgerService(Remote):
    """Non-idempotent mutations: re-execution is observable."""

    def __init__(self):
        self.executions = 0

    def push(self, box, value):
        self.executions += 1
        box.payload.append(value)
        return list(box.payload)

    def boom(self, box):
        self.executions += 1
        box.payload.append("never-visible")
        raise ValueError("application failure")


class Unregistered:
    """Not a marker subclass and never registered: unmarshalable."""


def make_heap():
    """A small graph with aliasing (the Node is reachable twice)."""
    shared = Node("shared")
    box = Box([1, shared])
    box.extra = shared
    return box


def local_baseline(method, *args):
    """Run the same mutation locally and return the resulting fingerprint."""
    box = make_heap()
    service = LedgerService()
    getattr(service, method)(box, *args)
    return heap_fingerprint([box])


class ChaosPair:
    """An endpoint pair with a fault-injecting channel between them.

    *transport* picks the carrier underneath the fault channel:
    ``inproc`` (the default), ``tcp``, ``uds``, or ``shm`` — the
    invariants must hold no matter what the faults are injected on top
    of.
    """

    def __init__(
        self,
        make_endpoint_pair,
        client_config=None,
        server_config=None,
        transport="inproc",
        **fault_kwargs,
    ):
        self.pair = make_endpoint_pair(
            server_config=server_config, client_config=client_config
        )
        if transport == "uds":
            # Rebinds server.address to uds://…; the wrapper below then
            # attaches to the socket-backed channel instead of inproc.
            self.pair.server.serve_uds()
        elif transport == "shm":
            self.pair.server.serve_shm()
        elif transport == "tcp":
            self.pair.server.serve_tcp()
        holder = {}

        def wrap(inner):
            holder["channel"] = FaultInjectingChannel(inner, **fault_kwargs)
            return holder["channel"]

        self.pair.resolver.set_wrapper(self.pair.server.address, wrap)
        self.ledger = LedgerService()
        # Call 1 through the fault channel is this registry lookup;
        # fail_on_calls schedules count from there.
        self.service = self.pair.serve(self.ledger, name="ledger")
        self.fault = holder["channel"]

    @property
    def server(self):
        return self.pair.server

    @property
    def client(self):
        return self.pair.client


class TestFaultAtEveryStage:
    """The property test: one fault per pipeline stage, same invariant."""

    STAGES = [
        # (stage, fault mode or None, fault schedule, expected exceptions).
        # Lookup is call 1 through the fault channel, the first push is
        # call 2. Transient modes must outlast all four retry attempts
        # (calls 2-5) to surface; corrupt replies are not retried.
        ("marshal", None, set(), SerializationError),
        ("send", "drop_request", {2, 3, 4, 5}, TransportError),
        ("execute", None, set(), RemoteInvocationError),
        ("reply", "drop_response", {2, 3, 4, 5}, TransportError),
        (
            "restore",
            "corrupt_response",
            {2},
            (UnmarshalError, SerializationError),
        ),
    ]

    @pytest.mark.parametrize("transport", ["inproc", "uds"])
    @pytest.mark.parametrize("policy", ["full", "delta"])
    @pytest.mark.parametrize(
        "stage,mode,schedule,expected", STAGES, ids=[s[0] for s in STAGES]
    )
    def test_heap_atomic_on_failure_then_converges(
        self, make_endpoint_pair, stage, mode, schedule, expected, policy,
        transport,
    ):
        if transport == "uds":
            import socket as socket_mod

            if not hasattr(socket_mod, "AF_UNIX"):
                pytest.skip("platform lacks AF_UNIX")
        chaos = ChaosPair(
            make_endpoint_pair,
            client_config=NRMIConfig(retry=FAST_RETRY, policy=policy),
            transport=transport,
            mode=mode or "drop_request",
            fail_on_calls=schedule,
        )
        box = make_heap()
        snapshot = heap_fingerprint([box])

        with pytest.raises(expected):
            if stage == "marshal":
                chaos.service.push(box, Unregistered())
            elif stage == "execute":
                chaos.service.boom(box)
            else:
                chaos.service.push(box, 99)

        # Invariant 1: the failed call left the heap bit-identical.
        assert heap_fingerprint([box]) == snapshot

        # Invariant 2: once the fault clears, the same call converges to
        # exactly the state a local call produces.
        chaos.service.push(box, 99)
        assert heap_fingerprint([box]) == local_baseline("push", 99)

    def test_transient_faults_retry_to_local_equivalence(
        self, make_endpoint_pair
    ):
        """Randomized schedule: a retry-enabled client driven through a
        lossy channel ends every call in the local-oracle state."""
        for seed in range(3):
            for mode in ("drop_request", "drop_response"):
                chaos = ChaosPair(
                    make_endpoint_pair,
                    client_config=NRMIConfig(retry=FAST_RETRY),
                    mode=mode,
                    failure_rate=0.3,
                    seed=seed,
                )
                remote_box, oracle_box = Box([]), Box([])
                oracle_service = LedgerService()
                for value in range(12):
                    for _ in range(20):  # bounded manual re-issue
                        before = heap_fingerprint([remote_box])
                        try:
                            chaos.service.push(remote_box, value)
                            break
                        except TransportError:
                            # Exhausted retries: heap must be untouched.
                            assert heap_fingerprint([remote_box]) == before
                    else:  # pragma: no cover - deterministic schedules pass
                        pytest.fail(f"{mode} seed={seed} never succeeded")
                    oracle_service.push(oracle_box, value)
                assert heap_fingerprint([remote_box]) == heap_fingerprint(
                    [oracle_box]
                )
                # Dropped replies execute server-side; the ledger may run
                # more often than the oracle, but never fewer times.
                assert chaos.ledger.executions >= oracle_service.executions


class TestAtMostOnceAcceptance:
    def test_lost_reply_retried_without_reexecution(self, make_endpoint_pair):
        """ISSUE acceptance: drop_response + retry executes the mutation
        exactly once; the retry is answered from the reply cache."""
        chaos = ChaosPair(
            make_endpoint_pair,
            client_config=NRMIConfig(retry=FAST_RETRY),
            mode="drop_response",
            fail_on_calls={2},  # first push attempt loses its reply
        )
        box = make_heap()
        result = chaos.service.push(box, 42)

        assert chaos.ledger.executions == 1  # executed exactly once
        assert result[-1] == 42
        assert heap_fingerprint([box]) == local_baseline("push", 42)
        assert chaos.server.metrics.counter("reply_cache.hits").value >= 1
        assert chaos.client.metrics.counter("calls.retries").value >= 1

    def test_lost_reply_retry_hits_cache_for_delta_frames(
        self, make_endpoint_pair
    ):
        """ISSUE acceptance: the reply cache replays *dirty-slot* frames
        byte-for-byte — a retried delta call restores correctly from the
        cached frame without re-executing the method."""
        chaos = ChaosPair(
            make_endpoint_pair,
            client_config=NRMIConfig(retry=FAST_RETRY, policy="delta"),
            mode="drop_response",
            fail_on_calls={2},  # first push attempt loses its reply
        )
        box = make_heap()
        result = chaos.service.push(box, 42)

        assert chaos.ledger.executions == 1  # executed exactly once
        assert result[-1] == 42
        assert heap_fingerprint([box]) == local_baseline("push", 42)
        assert chaos.server.metrics.counter("reply_cache.hits").value >= 1
        # The frame the retry restored from was the dirty-slot reply.
        assert chaos.client.metrics.counter("delta.slot_replies").value == 1

    def test_duplicate_response_deduplicated_by_server(
        self, make_endpoint_pair
    ):
        """A duplicated request frame is absorbed by the reply cache: the
        method still runs once and both deliveries get the same reply."""
        chaos = ChaosPair(
            make_endpoint_pair,
            mode="duplicate_response",
            fail_on_calls={2},
        )
        box = make_heap()
        result = chaos.service.push(box, 7)

        assert chaos.ledger.executions == 1
        assert result[-1] == 7
        assert heap_fingerprint([box]) == local_baseline("push", 7)
        assert chaos.server.metrics.counter("reply_cache.hits").value >= 1

    def test_reply_cache_disabled_reexecutes(self, make_endpoint_pair):
        """Control: with reply_cache_size=0 the duplicate frame re-runs
        the method — demonstrating the hazard the cache closes."""
        chaos = ChaosPair(
            make_endpoint_pair,
            mode="duplicate_response",
            fail_on_calls={2},
        )
        chaos.server.dispatcher.reply_cache.clear()
        chaos.server.dispatcher.reply_cache.max_entries = 0
        chaos.service.push(make_heap(), 7)
        assert chaos.ledger.executions == 2


class TestDeadlineAcceptance:
    def test_deadline_bounds_the_call_and_preserves_heap(
        self, make_endpoint_pair
    ):
        """ISSUE acceptance: a call exceeding its deadline raises
        DeadlineExceededError within deadline + one backoff step, heap
        untouched."""
        deadline, base_delay = 0.2, 0.05
        chaos = ChaosPair(
            make_endpoint_pair,
            client_config=NRMIConfig(
                retry=RetryPolicy(
                    max_attempts=3,
                    base_delay=base_delay,
                    jitter=0.0,
                    deadline=deadline,
                )
            ),
            mode="delay",
            delay_seconds=60.0,
            fail_on_calls={2},
        )
        box = make_heap()
        snapshot = heap_fingerprint([box])

        started = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            chaos.service.push(box, 1)
        elapsed = time.monotonic() - started

        assert elapsed < deadline + base_delay
        assert heap_fingerprint([box]) == snapshot
        assert chaos.ledger.executions == 0  # request never delivered
        assert (
            chaos.client.metrics.counter("calls.deadline_exceeded").value == 1
        )


class TestBreakerIntegration:
    def test_breaker_opens_after_persistent_failures(self, make_endpoint_pair):
        chaos = ChaosPair(
            make_endpoint_pair,
            client_config=NRMIConfig(
                breaker=CircuitBreakerPolicy(
                    failure_threshold=2, reset_timeout=300.0
                )
            ),
            mode="disconnect",
        )
        address = chaos.server.address
        chaos.fault.fail_next()
        for _ in range(2):
            with pytest.raises(TransportError):
                chaos.service.push(Box([]), 1)
        assert chaos.client.breaker_states() == {address: "open"}

        delivered_before = chaos.fault.calls_seen
        with pytest.raises(CircuitOpenError):
            chaos.service.push(Box([]), 1)
        # Rejected before reaching the channel.
        assert chaos.fault.calls_seen == delivered_before
        assert chaos.client.metrics.counter("calls.breaker_rejected").value == 1
        assert chaos.client.metrics.counter("breaker.to_open").value == 1
        assert (
            chaos.client.metrics.gauge(f"breaker.state.{address}").value == 1
        )


SOCKET_TRANSPORTS = ["tcp", "uds", "shm"]

#: Patient retry for overload rows: keeps retrying shed calls until the
#: single worker drains the burst.
OVERLOAD_RETRY = RetryPolicy(max_attempts=12, base_delay=0.02, jitter=0.0)


def _skip_without_af_unix(transport):
    if transport == "uds" and not hasattr(socket_mod, "AF_UNIX"):
        pytest.skip("platform lacks AF_UNIX")
    if transport == "shm":
        from repro.transport.shm import shm_supported

        if not shm_supported():
            pytest.skip("platform lacks AF_UNIX fd passing for shm")


def _socket_pair(make_endpoint_pair, transport, server_config=None,
                 client_config=None):
    _skip_without_af_unix(transport)
    pair = make_endpoint_pair(
        server_config=server_config, client_config=client_config
    )
    if transport == "uds":
        pair.server.serve_uds()
    elif transport == "shm":
        pair.server.serve_shm()
    else:
        pair.server.serve_tcp()
    return pair


def _socket_server(pair):
    """The live StagedStreamServer behind the endpoint's address."""
    return (
        pair.server._uds_server
        or pair.server._shm_server
        or pair.server._tcp_server
    )


class SlowLedgerService(Remote):
    """Non-idempotent and deliberately slow, so overload is reachable."""

    def __init__(self, delay=0.05):
        self.delay = delay
        self.executions = 0
        self.started = threading.Event()
        self._lock = threading.Lock()

    def push(self, box, value):
        self.started.set()
        with self._lock:
            self.executions += 1
        time.sleep(self.delay)
        box.payload.append(value)
        return list(box.payload)


class TestOverload:
    """Queue-full shedding, BUSY-then-retry, drain, and slow-loris rows.

    The at-most-once invariant threads through every row: a shed or
    stalled request must never have executed, so the ledger's execution
    count always equals the number of *successful* calls.
    """

    @pytest.mark.parametrize("transport", SOCKET_TRANSPORTS)
    def test_queue_full_burst_sheds_with_busy(
        self, make_endpoint_pair, transport
    ):
        """A pipelined burst against workers=1/queue=1 sheds the overflow
        with immediate BUSY; shed calls never execute."""
        pair = _socket_pair(
            make_endpoint_pair,
            transport,
            server_config=NRMIConfig(server_workers=1, queue_capacity=1),
        )
        ledger = SlowLedgerService(delay=0.05)
        service = pair.serve(ledger, name="slow")
        outcomes = []
        lock = threading.Lock()

        def call(value):
            try:
                service.push(Box([]), value)
                verdict = "ok"
            except ServerBusyError:
                verdict = "busy"
            with lock:
                outcomes.append(verdict)

        threads = [
            threading.Thread(target=call, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=15)
        assert len(outcomes) == 8
        assert outcomes.count("busy") >= 1
        assert outcomes.count("ok") >= 1
        # At-most-once through shedding: a BUSY call never ran.
        assert ledger.executions == outcomes.count("ok")
        assert (
            pair.server.metrics.counter("server.shed.queue_full").value >= 1
        )

    @pytest.mark.parametrize("transport", SOCKET_TRANSPORTS)
    def test_busy_then_retry_every_call_executes_once(
        self, make_endpoint_pair, transport
    ):
        """With retry enabled, shed calls back off and eventually land:
        every call succeeds and executes exactly once (no duplicates
        through the shed/retry cycles)."""
        pair = _socket_pair(
            make_endpoint_pair,
            transport,
            server_config=NRMIConfig(server_workers=1, queue_capacity=1),
            client_config=NRMIConfig(retry=OVERLOAD_RETRY),
        )
        ledger = SlowLedgerService(delay=0.03)
        service = pair.serve(ledger, name="slow")
        failures = []
        lock = threading.Lock()

        def call(value):
            try:
                service.push(Box([]), value)
            except TransportError as exc:  # pragma: no cover - fails test
                with lock:
                    failures.append(exc)

        threads = [
            threading.Thread(target=call, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not failures
        assert ledger.executions == 8  # exactly once each, despite sheds
        assert (
            pair.server.metrics.counter("server.shed.queue_full").value >= 1
        )
        assert pair.client.metrics.counter("calls.retries").value >= 1

    @pytest.mark.parametrize("transport", SOCKET_TRANSPORTS)
    def test_drain_during_inflight_completes_then_refuses(
        self, make_endpoint_pair, transport
    ):
        """stop(grace) lets the executing call finish and flush its
        reply, then the endpoint refuses new work."""
        pair = _socket_pair(
            make_endpoint_pair,
            transport,
            server_config=NRMIConfig(server_workers=2, queue_capacity=8),
        )
        ledger = SlowLedgerService(delay=0.3)
        service = pair.serve(ledger, name="slow")
        result = {}

        def call():
            result["value"] = service.push(Box([]), 1)

        thread = threading.Thread(target=call)
        thread.start()
        assert ledger.started.wait(5.0)  # the call is executing
        _socket_server(pair).stop(grace=5.0)
        thread.join(timeout=5.0)
        assert result.get("value") == [1]  # drained, not dropped
        assert ledger.executions == 1
        assert (
            pair.server.metrics.counter("server.drain.graceful").value == 1
        )
        with pytest.raises(TransportError):
            service.push(Box([]), 2)
        assert ledger.executions == 1  # the refused call never ran

    @pytest.mark.parametrize("transport", SOCKET_TRANSPORTS)
    def test_slow_loris_reaped_while_retry_succeeds(
        self, make_endpoint_pair, transport
    ):
        """A stalled half-frame occupies the server only until the
        partial-read deadline reaps it; the caller's retry (a fresh
        exchange) succeeds and the stalled attempt never executed."""
        _skip_without_af_unix(transport)
        chaos = ChaosPair(
            make_endpoint_pair,
            client_config=NRMIConfig(retry=FAST_RETRY),
            transport=transport,
            mode="stall",
            fail_on_calls={2},  # first push attempt stalls mid-frame
            stall_after_bytes=6,
        )
        server = _socket_server(chaos.pair)
        server._partial_read_timeout = 0.2

        box = make_heap()
        result = chaos.service.push(box, 42)
        assert result[-1] == 42
        assert chaos.ledger.executions == 1  # stalled attempt never ran
        assert heap_fingerprint([box]) == local_baseline("push", 42)
        assert chaos.fault.stalled_connections == 1

        reaped = chaos.server.metrics.counter(
            "server.connections.reaped_stalled"
        )
        deadline = time.monotonic() + 5.0
        while reaped.value < 1 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert reaped.value >= 1
        chaos.fault.release_stalled()
