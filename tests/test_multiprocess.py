"""True multi-process distribution: server in a subprocess, TCP between.

This is the configuration the paper actually measures — two separate
runtimes — and the strongest end-to-end evidence: copy-restore working
across a real process boundary and a real socket.
"""

import pathlib
import subprocess
import sys
import time

import pytest

from repro.bench.mutators import mutator_for
from repro.bench.trees import generate_workload
from repro.nrmi.runtime import Endpoint
from repro.nrmi.server_main import parse_binding
from repro.transport.resolver import ChannelResolver


@pytest.fixture(scope="module")
def server_process(tmp_path_factory):
    announce = tmp_path_factory.mktemp("mp") / "address"
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.nrmi.server_main",
            "--bind",
            "trees=repro.bench.mutators:TreeService",
            "--announce",
            str(announce),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.time() + 30
    while not announce.exists() or not announce.read_text().strip():
        if process.poll() is not None:
            raise RuntimeError(f"server died:\n{process.stdout.read()}")
        if time.time() > deadline:
            process.kill()
            raise RuntimeError("server never announced its address")
        time.sleep(0.05)
    yield announce.read_text().strip()
    process.terminate()
    try:
        process.wait(timeout=10)
    except subprocess.TimeoutExpired:
        process.kill()


class TestBindingSpec:
    def test_parse(self):
        assert parse_binding("svc=pkg.mod:Cls") == ("svc", "pkg.mod", "Cls")

    @pytest.mark.parametrize("bad", ["svc", "=pkg:Cls", "svc=pkg", "svc=:Cls", "svc=pkg:"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_binding(bad)


class TestAcrossProcesses:
    def test_copy_restore_across_process_boundary(self, server_process):
        resolver = ChannelResolver()
        client = Endpoint(name="mp-client", resolver=resolver)
        try:
            service = client.lookup(server_process, "trees")
            seed = 99
            remote_workload = generate_workload("III", 64, seed)
            service.mutate("III", remote_workload.root, seed)

            local_workload = generate_workload("III", 64, seed)
            mutator_for("III")(local_workload.root, seed)
            assert remote_workload.visible_data() == local_workload.visible_data()
        finally:
            client.close()
            resolver.close_all()

    def test_many_sequential_calls(self, server_process):
        resolver = ChannelResolver()
        client = Endpoint(name="mp-client2", resolver=resolver)
        try:
            service = client.lookup(server_process, "trees")
            for seed in range(5):
                workload = generate_workload("II", 32, seed)
                local = generate_workload("II", 32, seed)
                service.mutate("II", workload.root, seed)
                mutator_for("II")(local.root, seed)
                assert workload.visible_data() == local.visible_data()
        finally:
            client.close()
            resolver.close_all()

    def test_remote_error_across_processes(self, server_process):
        from repro.errors import RemoteError, RemoteInvocationError

        resolver = ChannelResolver()
        client = Endpoint(name="mp-client3", resolver=resolver)
        try:
            service = client.lookup(server_process, "trees")
            with pytest.raises((RemoteError, RemoteInvocationError)):
                service.no_such_method()
        finally:
            client.close()
            resolver.close_all()

    def test_unbound_name_across_processes(self, server_process):
        from repro.errors import RemoteInvocationError

        resolver = ChannelResolver()
        client = Endpoint(name="mp-client4", resolver=resolver)
        try:
            with pytest.raises(RemoteInvocationError):
                client.lookup(server_process, "no-such-service")
        finally:
            client.close()
            resolver.close_all()
