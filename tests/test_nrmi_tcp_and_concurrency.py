"""Full stack over real sockets, plus concurrent clients and servers."""

import threading

import pytest

from repro.core.markers import Remote
from repro.nrmi.config import NRMIConfig
from repro.nrmi.runtime import Endpoint, serve
from repro.transport.resolver import ChannelResolver

from tests.model_helpers import Box, Node


class CounterService(Remote):
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def add(self, box):
        with self._lock:
            self.total += box.payload
            box.payload = self.total
        return box.payload


class TreeFlipService(Remote):
    def flip(self, node):
        node.data = -node.data
        return node.data


class TestOverTcp:
    def test_copy_restore_over_sockets(self):
        resolver = ChannelResolver()
        server = Endpoint(name="tcp-server", resolver=resolver)
        client = Endpoint(name="tcp-client", resolver=resolver)
        try:
            server.bind("flip", TreeFlipService())
            tcp_address = server.serve_tcp()
            assert tcp_address.startswith("tcp://")
            service = client.lookup(tcp_address, "flip")
            node = Node(5)
            assert service.flip(node) == -5
            assert node.data == -5  # restored across a real socket
        finally:
            client.close()
            server.close()
            resolver.close_all()

    def test_ping_over_tcp(self):
        resolver = ChannelResolver()
        server = Endpoint(name="ping-server", resolver=resolver)
        client = Endpoint(name="ping-client", resolver=resolver)
        try:
            address = server.serve_tcp()
            assert client.ping(address)
        finally:
            client.close()
            server.close()
            resolver.close_all()

    def test_stub_minted_after_tcp_serve_carries_tcp_address(self):
        resolver = ChannelResolver()
        server = Endpoint(name="addr-server", resolver=resolver)
        client = Endpoint(name="addr-client", resolver=resolver)
        try:
            server.bind("flip", TreeFlipService())
            tcp_address = server.serve_tcp()
            stub = client.lookup(tcp_address, "flip")
            assert stub.descriptor.address == tcp_address
        finally:
            client.close()
            server.close()
            resolver.close_all()


class TestConcurrency:
    def test_many_threads_one_service(self, endpoint_pair):
        service_impl = CounterService()
        endpoint_pair.server.bind("counter", service_impl)
        errors = []

        def worker():
            try:
                client = Endpoint(resolver=endpoint_pair.resolver)
                try:
                    counter = client.lookup(endpoint_pair.server.address, "counter")
                    for _ in range(25):
                        counter.add(Box(1))
                finally:
                    client.close()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert service_impl.total == 8 * 25

    def test_concurrent_restores_do_not_interfere(self, endpoint_pair):
        endpoint_pair.server.bind("flip", TreeFlipService())
        results = {}
        errors = []

        def worker(worker_id):
            try:
                client = Endpoint(resolver=endpoint_pair.resolver)
                try:
                    flip = client.lookup(endpoint_pair.server.address, "flip")
                    node = Node(worker_id + 1)
                    flip.flip(node)
                    results[worker_id] = node.data
                finally:
                    client.close()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert results == {n: -(n + 1) for n in range(10)}

    def test_concurrent_tcp_clients(self):
        resolver = ChannelResolver()
        server = Endpoint(name="conc-tcp", resolver=resolver)
        impl = CounterService()
        errors = []
        try:
            server.bind("counter", impl)
            address = server.serve_tcp()

            def worker():
                try:
                    worker_resolver = ChannelResolver()
                    client = Endpoint(resolver=worker_resolver)
                    try:
                        counter = client.lookup(address, "counter")
                        for _ in range(10):
                            counter.add(Box(2))
                    finally:
                        client.close()
                        worker_resolver.close_all()
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=worker) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            assert impl.total == 6 * 10 * 2
        finally:
            server.close()
            resolver.close_all()


class TestServeHelper:
    def test_serve_context_manager(self):
        with serve(TreeFlipService(), name="flip") as server:
            client = Endpoint()
            try:
                node = Node(3)
                client.lookup(server.address, "flip").flip(node)
                assert node.data == -3
            finally:
                client.close()

    def test_serve_tcp_flag(self):
        with serve(TreeFlipService(), name="flip", tcp=True) as server:
            assert server.address.startswith("tcp://")

    def test_endpoint_close_idempotent(self):
        endpoint = Endpoint()
        endpoint.close()
        endpoint.close()

    def test_config_propagates(self):
        config = NRMIConfig(policy="delta")
        with serve(TreeFlipService(), name="flip", config=config) as server:
            assert server.config.policy == "delta"
