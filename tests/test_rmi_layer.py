"""RMI substrate: export table, DGC, protocol codec, registry service."""

import pytest

from repro.errors import (
    AlreadyBoundError,
    DistributedLeakError,
    NoSuchObjectError,
    NotBoundError,
    WireFormatError,
)
from repro.core.semantics import PassingMode
from repro.rmi.dgc import DistributedGC
from repro.rmi.export import ExportTable
from repro.rmi.protocol import (
    CallRequest,
    Op,
    Status,
    decode_call,
    decode_dgc_release,
    decode_field_get,
    decode_field_set,
    encode_call,
    encode_dgc_release,
    encode_field_get,
    encode_field_set,
    encode_ping,
    exception_response,
    ok_response,
    protocol_error_response,
    read_call_header,
    set_attempt,
    split_response,
)
from repro.rmi.registry import REGISTRY_OBJECT_ID, RegistryService
from repro.rmi.remote_ref import RemoteDescriptor
from repro.util.buffers import BufferReader

from tests.model_helpers import Node


class TestExportTable:
    def test_export_assigns_ids(self):
        table = ExportTable()
        a, b = Node(1), Node(2)
        id_a = table.export(a)
        id_b = table.export(b)
        assert id_a != id_b
        assert table.get(id_a) is a
        assert table.get(id_b) is b

    def test_export_idempotent(self):
        table = ExportTable()
        node = Node(1)
        assert table.export(node) == table.export(node)

    def test_get_unknown_raises(self):
        with pytest.raises(NoSuchObjectError):
            ExportTable().get(404)

    def test_unexport(self):
        table = ExportTable()
        node = Node(1)
        object_id = table.export(node)
        table.unexport(object_id)
        with pytest.raises(NoSuchObjectError):
            table.get(object_id)

    def test_id_of(self):
        table = ExportTable()
        node = Node(1)
        assert table.id_of(node) is None
        object_id = table.export(node)
        assert table.id_of(node) == object_id

    def test_marshal_bumps_dgc(self):
        table = ExportTable()
        node = Node(1)
        object_id = table.export_marshalled(node)
        assert table.dgc.refcount(object_id) == 1
        table.export_marshalled(node)
        assert table.dgc.refcount(object_id) == 2

    def test_unreferenced_object_unexported(self):
        table = ExportTable()
        node = Node(1)
        object_id = table.export_marshalled(node)
        table.dgc.release(object_id)
        with pytest.raises(NoSuchObjectError):
            table.get(object_id)

    def test_pinned_object_survives_release(self):
        table = ExportTable()
        service = Node("registry-like")
        object_id = table.export(service, pin=True)
        table.dgc.on_marshal(object_id)
        table.dgc.release(object_id)
        assert table.get(object_id) is service

    def test_live_count(self):
        table = ExportTable()
        table.export(Node(1))
        table.export(Node(2))
        assert table.live_count() == 2


class TestDistributedGC:
    def test_refcounting(self):
        dgc = DistributedGC()
        dgc.on_marshal(1)
        dgc.on_marshal(1)
        dgc.on_marshal(2)
        assert dgc.refcount(1) == 2
        assert dgc.live_referenced_count() == 2
        assert not dgc.release(1)
        assert dgc.release(1)  # now unreferenced
        assert dgc.refcount(1) == 0

    def test_release_more_than_held_clamps(self):
        dgc = DistributedGC()
        dgc.on_marshal(1)
        dgc.release(1, count=10)
        assert dgc.refcount(1) == 0

    def test_release_unknown_id_harmless(self):
        DistributedGC().release(12345)

    def test_unreferenced_callback(self):
        collected = []
        dgc = DistributedGC(on_unreferenced=collected.append)
        dgc.on_marshal(7)
        dgc.release(7)
        assert collected == [7]

    def test_leak_budget_enforced(self):
        dgc = DistributedGC(leak_budget=2)
        dgc.on_marshal(1)
        dgc.on_marshal(2)
        with pytest.raises(DistributedLeakError) as excinfo:
            dgc.on_marshal(3)
        assert excinfo.value.leaked == 3
        assert excinfo.value.budget == 2

    def test_release_frees_budget(self):
        dgc = DistributedGC(leak_budget=2)
        dgc.on_marshal(1)
        dgc.on_marshal(2)
        dgc.release(1)
        dgc.on_marshal(3)  # fits again

    def test_snapshot(self):
        dgc = DistributedGC()
        dgc.on_marshal(1)
        dgc.release(1)
        snap = dgc.snapshot()
        assert snap == {
            "live_referenced": 0,
            "total_marshalled": 1,
            "total_released": 1,
            "total_expired": 0,
        }


class TestProtocolCodec:
    def test_call_roundtrip(self):
        request = CallRequest(
            object_id=7,
            method="doit",
            policy="full",
            profile="modern",
            modes=(PassingMode.BY_COPY_RESTORE, PassingMode.BY_VALUE),
            args_payload=b"ARGS",
            call_id=12345,
            attempt=2,
        )
        encoded = encode_call(request)
        reader = BufferReader(encoded)
        assert reader.read_u8() == Op.CALL
        call_id, attempt = read_call_header(reader)
        assert (call_id, attempt) == (12345, 2)
        decoded = decode_call(reader, call_id=call_id, attempt=attempt)
        assert decoded == request

    def test_set_attempt_patches_in_place(self):
        request = CallRequest(
            object_id=7,
            method="doit",
            policy="none",
            profile="modern",
            modes=(),
            args_payload=b"",
            call_id=99,
        )
        frame = bytearray(encode_call(request))
        set_attempt(frame, 5)
        reader = BufferReader(bytes(frame))
        assert reader.read_u8() == Op.CALL
        assert read_call_header(reader) == (99, 5)
        # The rest of the frame is untouched.
        assert decode_call(reader).object_id == 7

    def test_field_get_roundtrip(self):
        reader = BufferReader(encode_field_get(3, "left"))
        assert reader.read_u8() == Op.FIELD_GET
        assert decode_field_get(reader) == (3, "left")

    def test_field_set_roundtrip(self):
        reader = BufferReader(encode_field_set(3, "data", b"VALUE"))
        assert reader.read_u8() == Op.FIELD_SET
        assert decode_field_set(reader) == (3, "data", b"VALUE")

    def test_dgc_release_roundtrip(self):
        reader = BufferReader(encode_dgc_release([(1, 2), (3, 1)]))
        assert reader.read_u8() == Op.DGC_RELEASE
        assert decode_dgc_release(reader) == [(1, 2), (3, 1)]

    def test_ping(self):
        assert BufferReader(encode_ping()).read_u8() == Op.PING

    def test_ok_response(self):
        status, reader = split_response(ok_response(b"PAYLOAD"))
        assert status is Status.OK
        assert reader.read_bytes(reader.remaining) == b"PAYLOAD"

    def test_exception_response(self):
        status, reader = split_response(
            exception_response("ValueError", "boom", "tb-text")
        )
        assert status is Status.EXCEPTION
        assert reader.read_str() == "ValueError"
        assert reader.read_str() == "boom"
        assert reader.read_str() == "tb-text"

    def test_protocol_error_response(self):
        status, reader = split_response(protocol_error_response("bad op"))
        assert status is Status.PROTOCOL_ERROR
        assert reader.read_str() == "bad op"

    def test_unknown_policy_id_rejected(self):
        encoded = bytearray(
            encode_call(
                CallRequest(1, "m", "none", "modern", (), b"")
            )
        )
        # Patch the policy byte
        # (op|attempt|call_id|objid|len(method)|method|policy...).
        policy_offset = 1 + 1 + 1 + 1 + 1 + 1  # op, attempt, call id, objid, method len, "m"
        encoded[policy_offset] = 99
        reader = BufferReader(bytes(encoded))
        reader.read_u8()
        read_call_header(reader)
        with pytest.raises(WireFormatError):
            decode_call(reader)

    def test_empty_response_rejected(self):
        from repro.errors import UnmarshalError

        with pytest.raises(UnmarshalError):
            split_response(b"")


class TestRemoteDescriptor:
    def test_encode_decode(self):
        descriptor = RemoteDescriptor("tcp://h:1", 42)
        assert RemoteDescriptor.decode(descriptor.encode()) == descriptor

    def test_equality_and_hash(self):
        a = RemoteDescriptor("x", 1)
        b = RemoteDescriptor("x", 1)
        c = RemoteDescriptor("x", 2)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not-a-descriptor"


class TestRegistryService:
    def test_bind_and_lookup(self):
        registry = RegistryService()
        service = Node("svc")
        registry.bind("name", service)
        assert registry.lookup("name") is service

    def test_bind_taken_name_raises(self):
        registry = RegistryService()
        registry.bind("n", Node(1))
        with pytest.raises(AlreadyBoundError):
            registry.bind("n", Node(2))

    def test_rebind_replaces(self):
        registry = RegistryService()
        registry.bind("n", Node(1))
        replacement = Node(2)
        registry.rebind("n", replacement)
        assert registry.lookup("n") is replacement

    def test_unbind(self):
        registry = RegistryService()
        registry.bind("n", Node(1))
        registry.unbind("n")
        with pytest.raises(NotBoundError):
            registry.lookup("n")

    def test_unbind_missing_raises(self):
        with pytest.raises(NotBoundError):
            RegistryService().unbind("ghost")

    def test_list_names_sorted(self):
        registry = RegistryService()
        registry.bind("zeta", Node(1))
        registry.bind("alpha", Node(2))
        assert registry.list_names() == ["alpha", "zeta"]

    def test_well_known_id_constant(self):
        assert REGISTRY_OBJECT_ID == 1
