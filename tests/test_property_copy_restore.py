"""The paper's central guarantee, property-based.

For a single-threaded client and a stateless server, call-by-copy-restore
is indistinguishable from local call-by-reference (Section 4.1). We
generate random object graphs with random client-side aliases and random
server-side mutation programs, run each program (a) locally on one replica
and (b) remotely via NRMI on another, and assert the resulting heaps are
isomorphic — aliasing included.
"""

from hypothesis import given, settings, strategies as st

from repro.core.markers import Remote
from repro.nrmi.config import NRMIConfig
from repro.nrmi.runtime import Endpoint
from repro.transport.resolver import ChannelResolver

from tests.model_helpers import Box, Node, heap_fingerprint

# ---------------------------------------------------------------- programs
#
# A mutation program is a list of ops over a node table. The table starts
# as the workload's nodes; 'new' ops append to it, so later ops can target
# server-allocated nodes. Ops are interpreted identically locally and
# remotely — the server method below is the interpreter.

MAX_NODES = 6


def apply_program(box, program):
    """Interpret *program* against the graph rooted at *box*.

    ``box.payload`` is the node list; ``box.index`` (dict) and
    ``box.tags`` (set) exercise hashed-container restoration, and
    ``wrap`` ops exercise immutable-container rebuilding.
    """
    table = list(box.payload)
    for op in program:
        kind = op[0]
        if kind == "set_data":
            _, idx, value = op
            table[idx % len(table)].data = value
        elif kind == "link":
            _, src, dst = op
            target = None if dst is None else table[dst % len(table)]
            table[src % len(table)].next = target
        elif kind == "new":
            _, value, attach = op
            fresh = Node(value)
            fresh.next = table[attach % len(table)].next
            table[attach % len(table)].next = fresh
            table.append(fresh)
        elif kind == "detach":
            _, idx = op
            victim = table[idx % len(table)]
            if victim in box.payload:
                box.payload.remove(victim)
        elif kind == "reattach":
            _, idx = op
            candidate = table[idx % len(table)]
            if candidate not in box.payload:
                box.payload.append(candidate)
        elif kind == "index_put":
            _, idx, key = op
            box.index[key] = table[idx % len(table)]
        elif kind == "index_drop":
            _, key = op
            box.index.pop(key, None)
        elif kind == "tag":
            _, idx = op
            box.tags.add(table[idx % len(table)])
        elif kind == "untag":
            _, idx = op
            box.tags.discard(table[idx % len(table)])
        elif kind == "wrap":
            _, first, second = op
            box.pair = (table[first % len(table)], table[second % len(table)])
    if not program:
        return None
    last = program[-1][1]
    if not isinstance(last, int):
        return None
    return table[last % len(table)]


class ProgramService(Remote):
    def run(self, box, program):
        return apply_program(box, program)


node_index = st.integers(min_value=0, max_value=MAX_NODES * 2)
key_names = st.sampled_from(["alpha", "beta", "gamma"])
op = st.one_of(
    st.tuples(st.just("set_data"), node_index, st.integers(-100, 100)),
    st.tuples(st.just("link"), node_index, st.one_of(st.none(), node_index)),
    st.tuples(st.just("new"), st.integers(1000, 2000), node_index),
    st.tuples(st.just("detach"), node_index),
    st.tuples(st.just("reattach"), node_index),
    st.tuples(st.just("index_put"), node_index, key_names),
    st.tuples(st.just("index_drop"), key_names),
    st.tuples(st.just("tag"), node_index),
    st.tuples(st.just("untag"), node_index),
    st.tuples(st.just("wrap"), node_index, node_index),
)
programs = st.lists(op, min_size=1, max_size=12)
graph_shapes = st.lists(
    st.one_of(st.none(), node_index), min_size=1, max_size=MAX_NODES
)
alias_picks = st.lists(node_index, max_size=3)


def build_workload(shape, alias_indices):
    """Materialize a graph: node i's next = nodes[shape[i]] (or None)."""
    nodes = [Node(i) for i in range(len(shape))]
    for i, target in enumerate(shape):
        nodes[i].next = None if target is None else nodes[target % len(nodes)]
    box = Box(list(nodes))
    box.index = {}
    box.tags = set()
    box.pair = None
    aliases = [nodes[i % len(nodes)] for i in alias_indices]
    return box, aliases


_WORLD = None


def world():
    """One shared client/server pair for every generated example."""
    global _WORLD
    if _WORLD is None:
        resolver = ChannelResolver()
        server = Endpoint(name="prop-server", resolver=resolver)
        client = Endpoint(name="prop-client", resolver=resolver)
        server.bind("program", ProgramService())
        service = client.lookup(server.address, "program")
        _WORLD = (server, client, service)
    return _WORLD


def run_both(shape, alias_indices, program, policy="full", delta_frames=True):
    box_local, aliases_local = build_workload(shape, alias_indices)
    result_local = apply_program(box_local, program)

    box_remote, aliases_remote = build_workload(shape, alias_indices)
    _server, client, service = world()
    object.__setattr__(
        client,
        "config",
        NRMIConfig(policy=policy, delta_reply_frames=delta_frames),
    )
    result_remote = service.run(box_remote, list(program))

    local_fp = heap_fingerprint([box_local, result_local] + aliases_local)
    remote_fp = heap_fingerprint([box_remote, result_remote] + aliases_remote)
    return local_fp, remote_fp


@settings(max_examples=80, deadline=None)
@given(graph_shapes, alias_picks, programs)
def test_copy_restore_equals_local_execution(shape, alias_indices, program):
    local_fp, remote_fp = run_both(shape, alias_indices, program, policy="full")
    assert local_fp == remote_fp


@settings(max_examples=60, deadline=None)
@given(graph_shapes, alias_picks, programs)
def test_delta_policy_equals_local_execution(shape, alias_indices, program):
    local_fp, remote_fp = run_both(shape, alias_indices, program, policy="delta")
    assert local_fp == remote_fp


@settings(max_examples=40, deadline=None)
@given(graph_shapes, alias_picks, programs)
def test_full_and_delta_agree(shape, alias_indices, program):
    _, full_fp = run_both(shape, alias_indices, program, policy="full")
    _, delta_fp = run_both(shape, alias_indices, program, policy="delta")
    assert full_fp == delta_fp


@settings(max_examples=40, deadline=None)
@given(graph_shapes, alias_picks, programs)
def test_all_delta_reply_kinds_agree(shape, alias_indices, program):
    """The dirty-slot reply frame, the legacy object-delta reply (what a
    non-capability-advertising client receives), and the full-map reply
    restore the same heap for any graph and mutation program."""
    _, full_fp = run_both(shape, alias_indices, program, policy="full")
    _, slots_fp = run_both(
        shape, alias_indices, program, policy="delta", delta_frames=True
    )
    _, legacy_fp = run_both(
        shape, alias_indices, program, policy="delta", delta_frames=False
    )
    assert slots_fp == full_fp
    assert legacy_fp == full_fp
